/* Compiled back-ends for the two interpreter-bound hot loops.
 *
 * This file is a line-by-line port of two pure-python kernels:
 *
 *   repro_greedy_run_edge_ids  <-  spanners/greedy.py
 *       IndexedGreedyKernel.run_edge_ids / _reachable_within
 *   repro_simplex_run          <-  lp/simplex.py  _Tableau.run / _pivot
 *
 * The port preserves the reference semantics operation-for-operation:
 * the same IEEE-754 double arithmetic, the same tolerances, the same
 * tie-breaks, the same iteration order. Build it with -ffp-contract=off
 * (see compiled/__init__.py) so the compiler cannot fuse a multiply-add
 * into an FMA and round differently from the numpy reference.
 *
 * Every entry point is plain C99 with int64/double arrays so it can be
 * loaded through ctypes with no build-time python dependency. Negative
 * return values signal allocation failure; the python wrappers raise.
 */

#include <math.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* ------------------------------------------------------------------ */
/* Greedy spanner: bounded bidirectional Dijkstra over a growing       */
/* adjacency, mirroring IndexedGreedyKernel exactly.                   */
/* ------------------------------------------------------------------ */

/* Growable per-vertex adjacency list of (neighbour, weight) pairs,
 * append-ordered like the python lists so traversal order matches. */
typedef struct {
    int64_t *to;
    double *w;
    int64_t len;
    int64_t cap;
} adj_t;

static int adj_push(adj_t *a, int64_t to, double w)
{
    if (a->len == a->cap) {
        int64_t cap = a->cap ? a->cap * 2 : 4;
        int64_t *nt = (int64_t *)realloc(a->to, (size_t)cap * sizeof(int64_t));
        if (nt == NULL)
            return -1;
        a->to = nt;
        double *nw = (double *)realloc(a->w, (size_t)cap * sizeof(double));
        if (nw == NULL)
            return -1;
        a->w = nw;
        a->cap = cap;
    }
    a->to[a->len] = to;
    a->w[a->len] = w;
    a->len += 1;
    return 0;
}

/* Binary min-heap of (dist, vertex), ordered like python's heapq on
 * (float, int) tuples: lexicographic, vertex index breaks distance
 * ties. The boolean the search returns is exact under any heap order
 * (see the _reachable_within docstring proof); matching heapq's order
 * just keeps the two implementations step-for-step comparable. */
typedef struct {
    double *d;
    int64_t *v;
    int64_t len;
    int64_t cap;
} heap_t;

static int heap_init(heap_t *h, int64_t cap)
{
    if (cap < 16)
        cap = 16;
    h->d = (double *)malloc((size_t)cap * sizeof(double));
    h->v = (int64_t *)malloc((size_t)cap * sizeof(int64_t));
    h->len = 0;
    h->cap = cap;
    return (h->d != NULL && h->v != NULL) ? 0 : -1;
}

static void heap_free(heap_t *h)
{
    free(h->d);
    free(h->v);
}

static int heap_less(const heap_t *h, int64_t i, int64_t j)
{
    return h->d[i] < h->d[j] || (h->d[i] == h->d[j] && h->v[i] < h->v[j]);
}

static void heap_swap(heap_t *h, int64_t i, int64_t j)
{
    double td = h->d[i];
    int64_t tv = h->v[i];
    h->d[i] = h->d[j];
    h->v[i] = h->v[j];
    h->d[j] = td;
    h->v[j] = tv;
}

static int heap_push(heap_t *h, double d, int64_t v)
{
    if (h->len == h->cap) {
        int64_t cap = h->cap * 2;
        double *nd = (double *)realloc(h->d, (size_t)cap * sizeof(double));
        if (nd == NULL)
            return -1;
        h->d = nd;
        int64_t *nv = (int64_t *)realloc(h->v, (size_t)cap * sizeof(int64_t));
        if (nv == NULL)
            return -1;
        h->v = nv;
        h->cap = cap;
    }
    int64_t i = h->len;
    h->len += 1;
    h->d[i] = d;
    h->v[i] = v;
    while (i > 0) {
        int64_t p = (i - 1) / 2;
        if (!heap_less(h, i, p))
            break;
        heap_swap(h, i, p);
        i = p;
    }
    return 0;
}

static void heap_pop(heap_t *h)
{
    h->len -= 1;
    if (h->len == 0)
        return;
    h->d[0] = h->d[h->len];
    h->v[0] = h->v[h->len];
    int64_t i = 0;
    for (;;) {
        int64_t l = 2 * i + 1;
        int64_t r = l + 1;
        int64_t s = i;
        if (l < h->len && heap_less(h, l, s))
            s = l;
        if (r < h->len && heap_less(h, r, s))
            s = r;
        if (s == i)
            break;
        heap_swap(h, i, s);
        i = s;
    }
}

/* Bounded bidirectional Dijkstra; 1 = reachable within bound, 0 = not,
 * -1 = allocation failure. Generation-stamped distance arrays avoid
 * O(n) clears between the m queries of one greedy pass, exactly like
 * the python kernel. */
static int reachable_within(
    adj_t *adj, adj_t *radj,
    double *dist_f, int64_t *stamp_f,
    double *dist_b, int64_t *stamp_b,
    int64_t gen, heap_t *hf, heap_t *hb,
    int64_t source, int64_t target, double bound)
{
    dist_f[source] = 0.0;
    stamp_f[source] = gen;
    dist_b[target] = 0.0;
    stamp_b[target] = gen;
    hf->len = 0;
    hb->len = 0;
    if (heap_push(hf, 0.0, source) || heap_push(hb, 0.0, target))
        return -1;
    for (;;) {
        /* Drop stale entries so the heap tops are true frontier minima. */
        while (hf->len && hf->d[0] > dist_f[hf->v[0]])
            heap_pop(hf);
        if (!hf->len)
            return 0; /* forward ball exhausted without meeting */
        while (hb->len && hb->d[0] > dist_b[hb->v[0]])
            heap_pop(hb);
        if (!hb->len)
            return 0;
        double top_f = hf->d[0];
        double top_b = hb->d[0];
        if (top_f + top_b > bound)
            return 0;
        if (top_f <= top_b) {
            double d = hf->d[0];
            int64_t v = hf->v[0];
            heap_pop(hf);
            adj_t *lst = &adj[v];
            for (int64_t e = 0; e < lst->len; e++) {
                int64_t u = lst->to[e];
                double nd = d + lst->w[e];
                if (nd > bound)
                    continue;
                if (stamp_b[u] == gen && nd + dist_b[u] <= bound)
                    return 1;
                if (stamp_f[u] != gen) {
                    dist_f[u] = nd;
                    stamp_f[u] = gen;
                    if (heap_push(hf, nd, u))
                        return -1;
                } else if (nd < dist_f[u]) {
                    dist_f[u] = nd;
                    if (heap_push(hf, nd, u))
                        return -1;
                }
            }
        } else {
            double d = hb->d[0];
            int64_t v = hb->v[0];
            heap_pop(hb);
            adj_t *lst = &radj[v];
            for (int64_t e = 0; e < lst->len; e++) {
                int64_t u = lst->to[e];
                double nd = d + lst->w[e];
                if (nd > bound)
                    continue;
                if (stamp_f[u] == gen && nd + dist_f[u] <= bound)
                    return 1;
                if (stamp_b[u] != gen) {
                    dist_b[u] = nd;
                    stamp_b[u] = gen;
                    if (heap_push(hb, nd, u))
                        return -1;
                } else if (nd < dist_b[u]) {
                    dist_b[u] = nd;
                    if (heap_push(hb, nd, u))
                        return -1;
                }
            }
        }
    }
}

/* Greedy pass over edge ids pre-sorted by weight. Writes the chosen ids
 * (pick order) into chosen_out (caller-allocated, capacity num_ids) and
 * returns the count; -1 on allocation failure. max_edges < 0 means no
 * cap. The keep/skip decisions are identical to the python kernel: the
 * distance bound is (k * w) * (1 + 1e-12) with the same _EPS slack, and
 * the boolean reachability query is exact. */
int64_t repro_greedy_run_edge_ids(
    int64_t n, int directed,
    const int64_t *edge_ids, int64_t num_ids,
    const int64_t *edge_u, const int64_t *edge_v, const double *edge_w,
    double k, int64_t max_edges,
    int64_t *chosen_out)
{
    const double eps = 1e-12; /* matches spanners/greedy.py _EPS */
    size_t vn = (size_t)(n > 0 ? n : 1);
    int64_t count = 0;
    int fail = 0;

    adj_t *adj = (adj_t *)calloc(vn, sizeof(adj_t));
    adj_t *radj = directed ? (adj_t *)calloc(vn, sizeof(adj_t)) : adj;
    double *dist_f = (double *)malloc(vn * sizeof(double));
    double *dist_b = (double *)malloc(vn * sizeof(double));
    int64_t *stamp_f = (int64_t *)calloc(vn, sizeof(int64_t));
    int64_t *stamp_b = (int64_t *)calloc(vn, sizeof(int64_t));
    heap_t hf = {0}, hb = {0};
    if (adj == NULL || radj == NULL || dist_f == NULL || dist_b == NULL ||
        stamp_f == NULL || stamp_b == NULL ||
        heap_init(&hf, 64) || heap_init(&hb, 64)) {
        fail = 1;
        goto done;
    }

    int64_t gen = 0;
    for (int64_t t = 0; t < num_ids; t++) {
        if (max_edges >= 0 && count >= max_edges)
            break;
        int64_t e = edge_ids[t];
        int64_t ui = edge_u[e];
        int64_t vi = edge_v[e];
        double w = edge_w[e];
        int reach = 0;
        /* An endpoint with no spanner edges yet is unreachable: skip
         * the query. */
        if (adj[ui].len && radj[vi].len) {
            gen += 1;
            reach = reachable_within(
                adj, radj, dist_f, stamp_f, dist_b, stamp_b, gen,
                &hf, &hb, ui, vi, (k * w) * (1.0 + eps));
            if (reach < 0) {
                fail = 1;
                goto done;
            }
        }
        if (!reach) {
            chosen_out[count++] = e;
            if (adj_push(&adj[ui], vi, w)) {
                fail = 1;
                goto done;
            }
            if (directed) {
                if (adj_push(&radj[vi], ui, w)) {
                    fail = 1;
                    goto done;
                }
            } else {
                if (adj_push(&adj[vi], ui, w)) {
                    fail = 1;
                    goto done;
                }
            }
        }
    }

done:
    if (adj != NULL) {
        for (size_t i = 0; i < vn; i++) {
            free(adj[i].to);
            free(adj[i].w);
        }
    }
    if (directed && radj != NULL) {
        for (size_t i = 0; i < vn; i++) {
            free(radj[i].to);
            free(radj[i].w);
        }
        free(radj);
    }
    free(adj);
    free(dist_f);
    free(dist_b);
    free(stamp_f);
    free(stamp_b);
    heap_free(&hf);
    heap_free(&hb);
    return fail ? -1 : count;
}

/* ------------------------------------------------------------------ */
/* Simplex: the _Tableau.run pivot loop, ported decision-for-decision. */
/* ------------------------------------------------------------------ */

/* Primal simplex with Bland's rule on an m x n row-major tableau.
 * Mutates a, b, basis in place exactly like _Tableau.run/_pivot:
 * same entering scan (index order, basic-column skip), same ratio test
 * with the tol tie-break on basis index, same unbounded envelope
 * dual_tol * (1 + sum |column|). Returns 1 = "optimal",
 * 0 = "unbounded", -1 = iteration limit (python raises SolverLimit),
 * -2 = allocation failure. */
int repro_simplex_run(
    int64_t m, int64_t n,
    double *a, double *b, const double *c, int64_t *basis,
    int64_t max_iterations, double entering_tol,
    double tol, double dual_tol)
{
    double *red = (double *)malloc((size_t)(n > 0 ? n : 1) * sizeof(double));
    unsigned char *basic =
        (unsigned char *)malloc((size_t)(n > 0 ? n : 1));
    if (red == NULL || basic == NULL) {
        free(red);
        free(basic);
        return -2;
    }

    int result = -1;
    for (int64_t it = 0; it < max_iterations; it++) {
        /* reduced costs: c - c[basis] @ a, accumulated row by row. */
        for (int64_t j = 0; j < n; j++)
            red[j] = 0.0;
        for (int64_t i = 0; i < m; i++) {
            double cb = c[basis[i]];
            if (cb != 0.0) {
                const double *row = a + i * n;
                for (int64_t j = 0; j < n; j++)
                    red[j] += cb * row[j];
            }
        }
        for (int64_t j = 0; j < n; j++)
            red[j] = c[j] - red[j];

        memset(basic, 0, (size_t)n);
        for (int64_t i = 0; i < m; i++)
            basic[basis[i]] = 1;

        int pivoted = 0;
        for (int64_t entering = 0; entering < n; entering++) {
            if (red[entering] >= -entering_tol)
                continue; /* Bland: improving columns in index order */
            if (basic[entering])
                continue; /* basic column: float noise, re-entry stalls */

            /* Ratio test, Bland tie-break on basis variable index. */
            int64_t leaving = -1;
            double best_ratio = INFINITY;
            for (int64_t i = 0; i < m; i++) {
                double aij = a[i * n + entering];
                if (aij > tol) {
                    double ratio = b[i] / aij;
                    if (ratio < best_ratio - tol ||
                        (fabs(ratio - best_ratio) <= tol &&
                         (leaving < 0 || basis[i] < basis[leaving]))) {
                        best_ratio = ratio;
                        leaving = i;
                    }
                }
            }
            if (leaving >= 0) {
                double piv = a[leaving * n + entering];
                double *prow = a + leaving * n;
                for (int64_t j = 0; j < n; j++)
                    prow[j] /= piv;
                b[leaving] /= piv;
                for (int64_t i = 0; i < m; i++) {
                    if (i == leaving)
                        continue;
                    double f = a[i * n + entering];
                    if (fabs(f) > tol) {
                        double *row = a + i * n;
                        for (int64_t j = 0; j < n; j++)
                            row[j] -= f * prow[j];
                        b[i] -= f * b[leaving];
                    }
                }
                basis[leaving] = entering;
                pivoted = 1;
                break;
            }
            /* No positive pivot entry: unbounded only when the reduced
             * cost is decisively outside the dual-tolerance envelope. */
            double colsum = 0.0;
            for (int64_t i = 0; i < m; i++)
                colsum += fabs(a[i * n + entering]);
            double envelope = dual_tol * (1.0 + colsum);
            if (red[entering] < -envelope) {
                result = 0;
                goto out;
            }
        }
        if (!pivoted) {
            result = 1;
            goto out;
        }
    }

out:
    free(red);
    free(basic);
    return result;
}
