"""Plain-text table rendering for the benchmark harness.

Every benchmark prints its measurements as a paper-style table; this module
is the single formatter so all experiments look alike in the logs and in
EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence


def format_cell(value, precision: int = 2) -> str:
    """Human formatting: ints plain, floats rounded, inf/nan symbolic."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if math.isnan(value):
            return "-"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
    precision: int = 2,
) -> str:
    """Render an aligned monospace table with a rule under the header."""
    materialized: List[List[str]] = [
        [format_cell(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
    precision: int = 2,
) -> None:
    """Render and print (with surrounding blank lines for log readability).

    When the ``REPRO_TABLE_LOG`` environment variable names a file, the
    rendered table is also appended there — the benchmark harness uses
    this to replay every experiment table in pytest's (uncaptured)
    terminal summary.
    """
    import os

    text = render_table(headers, rows, title=title, precision=precision)
    print()
    print(text)
    print()
    log_path = os.environ.get("REPRO_TABLE_LOG")
    if log_path:
        with open(log_path, "a", encoding="utf-8") as handle:
            handle.write(text + "\n\n")
