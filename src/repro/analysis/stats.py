"""Small statistics helpers shared by benchmarks and experiments."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass
class Summary:
    """Five-number-style summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float


def summarize(samples: Sequence[float]) -> Summary:
    """Mean/std/min/max of a nonempty sample (population std)."""
    if not samples:
        return Summary(count=0, mean=math.nan, std=math.nan,
                       minimum=math.nan, maximum=math.nan)
    n = len(samples)
    mean = sum(samples) / n
    var = sum((s - mean) ** 2 for s in samples) / n
    return Summary(
        count=n,
        mean=mean,
        std=math.sqrt(var),
        minimum=min(samples),
        maximum=max(samples),
    )


def log_log_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of ``log y`` against ``log x``.

    Experiment E2 fits measured spanner sizes against ``n`` on a log-log
    scale and compares the slope with the theoretical exponent
    ``1 + 2/(k+1)``.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    pairs = [(x, y) for x, y in zip(xs, ys) if x > 0 and y > 0]
    if len(pairs) < 2:
        raise ValueError("need at least two positive points for a slope")
    lx = [math.log(x) for x, _ in pairs]
    ly = [math.log(y) for _, y in pairs]
    n = len(pairs)
    mx = sum(lx) / n
    my = sum(ly) / n
    denom = sum((x - mx) ** 2 for x in lx)
    if denom == 0:
        raise ValueError("xs are all equal; slope undefined")
    return sum((x - mx) * (y - my) for x, y in zip(lx, ly)) / denom


def growth_ratios(values: Sequence[float]) -> List[float]:
    """Successive ratios ``values[i+1] / values[i]`` (inf on zero)."""
    out = []
    for a, b in zip(values, values[1:]):
        out.append(b / a if a else math.inf)
    return out


def geometric_mean(samples: Sequence[float]) -> float:
    """Geometric mean of positive samples."""
    if not samples:
        return math.nan
    if any(s <= 0 for s in samples):
        raise ValueError("geometric mean needs positive samples")
    return math.exp(sum(math.log(s) for s in samples) / len(samples))
