"""A small multi-trial experiment runner.

Randomized algorithms need multi-seed aggregation before their numbers
mean anything; this module gives benchmarks and notebooks a uniform way to
run ``trial(seed) -> {metric: value}`` functions across seeds and collect
per-metric summaries, without each experiment re-inventing the loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from .stats import Summary, summarize
from .tables import render_table

#: A trial: seed in, named metrics out.
TrialFunction = Callable[[int], Mapping[str, float]]


@dataclass
class ExperimentResult:
    """All trial records of one experiment plus aggregation helpers."""

    name: str
    records: List[Dict[str, float]] = field(default_factory=list)
    seeds: List[int] = field(default_factory=list)

    @property
    def num_trials(self) -> int:
        return len(self.records)

    def metrics(self) -> List[str]:
        """Metric names, in first-seen order across records."""
        seen: Dict[str, None] = {}
        for record in self.records:
            for key in record:
                seen.setdefault(key, None)
        return list(seen)

    def values(self, metric: str) -> List[float]:
        """All recorded values of one metric (records missing it skipped)."""
        return [r[metric] for r in self.records if metric in r]

    def summary(self, metric: str) -> Summary:
        """Mean/std/min/max of one metric across trials."""
        return summarize(self.values(metric))

    def summaries(self) -> Dict[str, Summary]:
        return {metric: self.summary(metric) for metric in self.metrics()}

    def to_table(self, precision: int = 2) -> str:
        """Render a metric-per-row summary table."""
        rows = []
        for metric, s in self.summaries().items():
            rows.append([metric, s.count, s.mean, s.std, s.minimum, s.maximum])
        return render_table(
            ["metric", "trials", "mean", "std", "min", "max"],
            rows,
            title=f"experiment: {self.name}",
            precision=precision,
        )


def run_experiment(
    name: str,
    trial: TrialFunction,
    seeds: Iterable[int],
    on_error: str = "raise",
) -> ExperimentResult:
    """Run ``trial`` for every seed and collect the records.

    ``on_error`` is ``"raise"`` (default) or ``"skip"`` — skipping records
    nothing for a failed seed but keeps going, which suits Monte Carlo
    sweeps where rare seeds hit solver limits.
    """
    if on_error not in ("raise", "skip"):
        raise ValueError(f"on_error must be 'raise' or 'skip', got {on_error!r}")
    result = ExperimentResult(name=name)
    for seed in seeds:
        try:
            record = dict(trial(seed))
        except Exception:
            if on_error == "raise":
                raise
            continue
        result.records.append(record)
        result.seeds.append(seed)
    return result


def compare_experiments(
    results: Sequence[ExperimentResult], metric: str, precision: int = 2
) -> str:
    """Side-by-side table of one metric across several experiments."""
    rows = []
    for result in results:
        s = result.summary(metric)
        rows.append([result.name, s.count, s.mean, s.std, s.minimum, s.maximum])
    return render_table(
        ["experiment", "trials", "mean", "std", "min", "max"],
        rows,
        title=f"metric: {metric}",
        precision=precision,
    )
