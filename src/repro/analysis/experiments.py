"""A small multi-trial experiment runner.

Randomized algorithms need multi-seed aggregation before their numbers
mean anything; this module gives benchmarks and notebooks a uniform way to
run ``trial(seed) -> {metric: value}`` functions across seeds and collect
per-metric summaries, without each experiment re-inventing the loop.

The typed counterpart is :func:`run_spec_sweep`: a list of
:class:`repro.spec.SpannerSpec` values executed through one
:class:`repro.session.Session` (so the sweep shares CSR snapshots and
derived RNG streams), with every report's numeric stats collected as
metrics. The E-suite benchmarks ride it; because specs serialize to
JSON, the same sweep splits into shards runnable by ``repro run``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .stats import Summary, summarize
from .tables import render_table

if TYPE_CHECKING:  # pragma: no cover
    from ..graph.graph import BaseGraph
    from ..session import Session
    from ..spec import BuildReport, SpannerSpec

#: A trial: seed in, named metrics out.
TrialFunction = Callable[[int], Mapping[str, float]]


@dataclass
class ExperimentResult:
    """All trial records of one experiment plus aggregation helpers."""

    name: str
    records: List[Dict[str, float]] = field(default_factory=list)
    seeds: List[int] = field(default_factory=list)

    @property
    def num_trials(self) -> int:
        return len(self.records)

    def metrics(self) -> List[str]:
        """Metric names, in first-seen order across records."""
        seen: Dict[str, None] = {}
        for record in self.records:
            for key in record:
                seen.setdefault(key, None)
        return list(seen)

    def values(self, metric: str) -> List[float]:
        """All recorded values of one metric (records missing it skipped)."""
        return [r[metric] for r in self.records if metric in r]

    def summary(self, metric: str) -> Summary:
        """Mean/std/min/max of one metric across trials."""
        return summarize(self.values(metric))

    def summaries(self) -> Dict[str, Summary]:
        return {metric: self.summary(metric) for metric in self.metrics()}

    def to_table(self, precision: int = 2) -> str:
        """Render a metric-per-row summary table."""
        rows = []
        for metric, s in self.summaries().items():
            rows.append([metric, s.count, s.mean, s.std, s.minimum, s.maximum])
        return render_table(
            ["metric", "trials", "mean", "std", "min", "max"],
            rows,
            title=f"experiment: {self.name}",
            precision=precision,
        )


def run_experiment(
    name: str,
    trial: TrialFunction,
    seeds: Iterable[int],
    on_error: str = "raise",
) -> ExperimentResult:
    """Run ``trial`` for every seed and collect the records.

    ``on_error`` is ``"raise"`` (default) or ``"skip"`` — skipping records
    nothing for a failed seed but keeps going, which suits Monte Carlo
    sweeps where rare seeds hit solver limits.
    """
    if on_error not in ("raise", "skip"):
        raise ValueError(f"on_error must be 'raise' or 'skip', got {on_error!r}")
    result = ExperimentResult(name=name)
    for seed in seeds:
        try:
            record = dict(trial(seed))
        except Exception:
            if on_error == "raise":
                raise
            continue
        result.records.append(record)
        result.seeds.append(seed)
    return result


def run_spec_sweep(
    name: str,
    specs: Sequence["SpannerSpec"],
    graph: Optional["BaseGraph"] = None,
    session: Optional["Session"] = None,
    metrics: Optional[Callable[["BuildReport"], Mapping[str, float]]] = None,
    on_error: str = "raise",
) -> Tuple[ExperimentResult, List["BuildReport"]]:
    """Execute a spec list through one session; collect metrics + reports.

    Every report contributes a record with ``size``, ``wall_time_s``, its
    numeric ``stats`` entries, and whatever the optional ``metrics``
    callback derives from the full report. Specs sharing a host (via
    ``graph=`` or a shared binding) reuse one CSR snapshot — the point of
    routing sweeps through :meth:`repro.session.Session.build_many`
    semantics instead of per-call plumbing.

    Returns the aggregate :class:`ExperimentResult` *and* the raw
    reports, so callers can keep artifacts (spanners, oracles) alongside
    the numbers.
    """
    from ..session import Session

    if on_error not in ("raise", "skip"):
        raise ValueError(f"on_error must be 'raise' or 'skip', got {on_error!r}")
    session = session if session is not None else Session()
    result = ExperimentResult(name=name)
    reports: List["BuildReport"] = []
    for index, spec in enumerate(specs):
        try:
            report = session.build(spec, graph=graph)
        except Exception:
            if on_error == "raise":
                raise
            continue
        record: Dict[str, float] = {
            "size": float(report.size),
            "wall_time_s": report.wall_time_s,
        }
        for key, value in report.stats.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                record[key] = float(value)
        if metrics is not None:
            record.update(metrics(report))
        result.records.append(record)
        seed = report.resolved_seed
        result.seeds.append(seed if seed is not None else index)
        reports.append(report)
    return result, reports


def compare_experiments(
    results: Sequence[ExperimentResult], metric: str, precision: int = 2
) -> str:
    """Side-by-side table of one metric across several experiments."""
    rows = []
    for result in results:
        s = result.summary(metric)
        rows.append([result.name, s.count, s.mean, s.std, s.minimum, s.maximum])
    return render_table(
        ["experiment", "trials", "mean", "std", "min", "max"],
        rows,
        title=f"metric: {metric}",
        precision=precision,
    )
