"""A small multi-trial experiment runner.

Randomized algorithms need multi-seed aggregation before their numbers
mean anything; this module gives benchmarks and notebooks a uniform way to
run ``trial(seed) -> {metric: value}`` functions across seeds and collect
per-metric summaries, without each experiment re-inventing the loop.

The typed counterpart is :func:`run_spec_sweep`: a list of
:class:`repro.spec.SpannerSpec` values executed through one
:class:`repro.session.Session` (so the sweep shares CSR snapshots and
derived RNG streams), with every report's numeric stats collected as
metrics. With ``workers > 1`` the same call routes through the sharded
:func:`repro.sweep.run_sweep` driver — worker processes, persisted shard
envelopes — and :func:`merge_shard_reports` recombines the shards into
the very reports (and therefore tables) the sequential path produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .stats import Summary, summarize
from .tables import render_table

if TYPE_CHECKING:  # pragma: no cover
    from ..graph.graph import BaseGraph
    from ..session import Session
    from ..spec import BuildReport, SpannerSpec

#: A trial: seed in, named metrics out.
TrialFunction = Callable[[int], Mapping[str, float]]


@dataclass
class ExperimentResult:
    """All trial records of one experiment plus aggregation helpers."""

    name: str
    records: List[Dict[str, float]] = field(default_factory=list)
    seeds: List[int] = field(default_factory=list)

    @property
    def num_trials(self) -> int:
        return len(self.records)

    def metrics(self) -> List[str]:
        """Metric names, in first-seen order across records."""
        seen: Dict[str, None] = {}
        for record in self.records:
            for key in record:
                seen.setdefault(key, None)
        return list(seen)

    def values(self, metric: str) -> List[float]:
        """All recorded values of one metric (records missing it skipped)."""
        return [r[metric] for r in self.records if metric in r]

    def summary(self, metric: str) -> Summary:
        """Mean/std/min/max of one metric across trials."""
        return summarize(self.values(metric))

    def summaries(self) -> Dict[str, Summary]:
        return {metric: self.summary(metric) for metric in self.metrics()}

    def to_table(self, precision: int = 2) -> str:
        """Render a metric-per-row summary table."""
        rows = []
        for metric, s in self.summaries().items():
            rows.append([metric, s.count, s.mean, s.std, s.minimum, s.maximum])
        return render_table(
            ["metric", "trials", "mean", "std", "min", "max"],
            rows,
            title=f"experiment: {self.name}",
            precision=precision,
        )


def run_experiment(
    name: str,
    trial: TrialFunction,
    seeds: Iterable[int],
    on_error: str = "raise",
) -> ExperimentResult:
    """Run ``trial`` for every seed and collect the records.

    ``on_error`` is ``"raise"`` (default) or ``"skip"`` — skipping records
    nothing for a failed seed but keeps going, which suits Monte Carlo
    sweeps where rare seeds hit solver limits.
    """
    if on_error not in ("raise", "skip"):
        raise ValueError(f"on_error must be 'raise' or 'skip', got {on_error!r}")
    result = ExperimentResult(name=name)
    for seed in seeds:
        try:
            record = dict(trial(seed))
        except Exception:
            if on_error == "raise":
                raise
            continue
        result.records.append(record)
        result.seeds.append(seed)
    return result


def _report_record(
    report: "BuildReport",
    metrics: Optional[Callable[["BuildReport"], Mapping[str, float]]],
) -> Dict[str, float]:
    """One sweep record: size, wall time, numeric stats, custom metrics.

    Shared by the sequential and sharded paths of :func:`run_spec_sweep`,
    so the two cannot drift apart in what a table row contains.
    """
    record: Dict[str, float] = {
        "size": float(report.size),
        "wall_time_s": report.wall_time_s,
    }
    for key, value in report.stats.items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            record[key] = float(value)
    if metrics is not None:
        record.update(metrics(report))
    return record


def merge_shard_reports(
    shards: Iterable[Union[str, Mapping[str, Any]]],
) -> List["BuildReport"]:
    """Recombine shard envelopes into the sequential path's report list.

    ``shards`` are envelope dicts (from :func:`repro.sweep.run_shard`)
    and/or paths to persisted ``shard-<i>.json`` files. The merge is
    strict: every envelope must carry the same plan fingerprint, the
    parent-plan indices must be disjoint, and together they must cover
    ``0..total-1`` with nothing missing — a merge of half a sweep is an
    error, not a short table. Reports come back rehydrated
    (:meth:`repro.spec.BuildReport.from_dict`) in parent-plan order with
    the envelopes' wall times reattached, so downstream tables are
    exactly what :meth:`repro.session.Session.build_many` would have
    produced for the same plan and seeds.
    """
    from ..errors import InvalidSpec
    from ..spec import BuildReport
    from ..sweep import load_shard_report

    envelopes: List[Mapping[str, Any]] = []
    for shard in shards:
        envelopes.append(
            load_shard_report(shard) if isinstance(shard, str) else shard
        )
    if not envelopes:
        raise InvalidSpec("no shard envelopes to merge")
    fingerprints = {env.get("plan") for env in envelopes}
    if len(fingerprints) != 1:
        raise InvalidSpec(
            f"shard envelopes come from different plans: {sorted(fingerprints)}"
        )
    by_index: Dict[int, Tuple[Mapping[str, Any], float]] = {}
    for env in envelopes:
        indices = env.get("indices", [])
        reports = env.get("reports", [])
        times = env.get("timing", {}).get("wall_times_s", [0.0] * len(reports))
        if len(indices) != len(reports):
            raise InvalidSpec(
                f"shard {env.get('shard')} has {len(reports)} reports for "
                f"{len(indices)} indices"
            )
        for index, doc, wall in zip(indices, reports, times):
            if index in by_index:
                raise InvalidSpec(
                    f"plan index {index} appears in more than one shard "
                    "envelope; shards must be disjoint"
                )
            by_index[index] = (doc, wall)
    sizes = {env.get("plan_size") for env in envelopes}
    if len(sizes) != 1:
        raise InvalidSpec(
            f"shard envelopes disagree on the plan size: {sorted(sizes)}"
        )
    (total,) = sizes
    if total is None:
        total = len(by_index)
    expected = set(range(total))
    if set(by_index) != expected:
        missing = sorted(expected - set(by_index))
        raise InvalidSpec(
            f"shard envelopes do not cover the whole plan of {total} specs "
            f"(missing indices {missing[:10]}); run or collect the missing "
            "shards before merging"
        )
    merged: List["BuildReport"] = []
    for index in sorted(by_index):
        doc, wall = by_index[index]
        report = BuildReport.from_dict(doc)
        report.wall_time_s = wall
        merged.append(report)
    return merged


def run_spec_sweep(
    name: str,
    specs: Sequence["SpannerSpec"],
    graph: Optional["BaseGraph"] = None,
    session: Optional["Session"] = None,
    metrics: Optional[Callable[["BuildReport"], Mapping[str, float]]] = None,
    on_error: str = "raise",
    workers: int = 1,
    reports_dir: Optional[str] = None,
    include_spanner: bool = False,
) -> Tuple[ExperimentResult, List["BuildReport"]]:
    """Execute a spec list through one session; collect metrics + reports.

    Every report contributes a record with ``size``, ``wall_time_s``, its
    numeric ``stats`` entries, and whatever the optional ``metrics``
    callback derives from the full report. Specs sharing a host (via
    ``graph=`` or a shared binding) reuse one CSR snapshot — the point of
    routing sweeps through :meth:`repro.session.Session.build_many`
    semantics instead of per-call plumbing.

    With ``workers > 1`` (or a ``reports_dir``) the sweep routes through
    :func:`repro.sweep.run_sweep`: the specs become a
    :class:`repro.sweep.SweepPlan`, shards run in worker processes, shard
    envelopes are persisted, and the merged reports feed the *same*
    record extraction — so the resulting tables match the sequential
    path's for the same specs and seeds. The sharded path requires
    explicit per-spec seeds (pin them, or resolve a plan first) and
    returns envelope-rehydrated reports (spanner graphs only under
    ``include_spanner``; richer artifacts such as oracles do not survive
    serialization).

    Returns the aggregate :class:`ExperimentResult` *and* the raw
    reports, so callers can keep artifacts (spanners, oracles) alongside
    the numbers.
    """
    from ..session import Session

    if on_error not in ("raise", "skip"):
        raise ValueError(f"on_error must be 'raise' or 'skip', got {on_error!r}")
    if workers > 1 or reports_dir is not None:
        from ..errors import InvalidSpec
        from ..sweep import SweepPlan, run_sweep

        # The sharded path cannot honor these: a failed spec aborts its
        # whole worker (no per-spec skipping), and a session cannot be
        # shared across processes. Refuse loudly instead of silently
        # changing semantics.
        if on_error == "skip":
            raise InvalidSpec(
                "on_error='skip' is not supported with workers/reports_dir; "
                "sharded sweeps fail the whole run on the first error"
            )
        if session is not None:
            raise InvalidSpec(
                "a session cannot be shared across sweep worker processes; "
                "drop session= (each shard runs its own) or use workers=1 "
                "without reports_dir"
            )
        unseeded = [i for i, spec in enumerate(specs) if spec.seed is None]
        if unseeded:
            raise InvalidSpec(
                f"sharded sweeps need explicit per-spec seeds; specs "
                f"{unseeded[:10]} have none (pin seeds, or build a "
                "SweepPlan and resolve_seeds it first)"
            )
        plan = SweepPlan.build(specs, graph=graph, name=name)
        reports = run_sweep(
            plan,
            workers=workers,
            reports_dir=reports_dir,
            include_spanner=include_spanner,
        )
        result = ExperimentResult(name=name)
        for report in reports:
            result.records.append(_report_record(report, metrics))
            result.seeds.append(report.resolved_seed)
        return result, reports
    session = session if session is not None else Session()
    result = ExperimentResult(name=name)
    reports: List["BuildReport"] = []
    for index, spec in enumerate(specs):
        try:
            report = session.build(spec, graph=graph)
        except Exception:
            if on_error == "raise":
                raise
            continue
        result.records.append(_report_record(report, metrics))
        seed = report.resolved_seed
        result.seeds.append(seed if seed is not None else index)
        reports.append(report)
    return result, reports


def compare_experiments(
    results: Sequence[ExperimentResult], metric: str, precision: int = 2
) -> str:
    """Side-by-side table of one metric across several experiments."""
    rows = []
    for result in results:
        s = result.summary(metric)
        rows.append([result.name, s.count, s.mean, s.std, s.minimum, s.maximum])
    return render_table(
        ["experiment", "trials", "mean", "std", "min", "max"],
        rows,
        title=f"metric: {metric}",
        precision=precision,
    )
