"""Measurement and reporting harness shared by tests and benchmarks."""

from .experiments import (
    ExperimentResult,
    TrialFunction,
    compare_experiments,
    merge_shard_reports,
    run_experiment,
    run_spec_sweep,
)

from .stats import Summary, geometric_mean, growth_ratios, log_log_slope, summarize
from .stretch import (
    StretchProfile,
    exhaustive_stretch_profile,
    sampled_stretch_profile,
    stretch_after_faults,
)
from .tables import format_cell, print_table, render_table

__all__ = [
    "ExperimentResult",
    "StretchProfile",
    "Summary",
    "TrialFunction",
    "compare_experiments",
    "exhaustive_stretch_profile",
    "format_cell",
    "geometric_mean",
    "growth_ratios",
    "log_log_slope",
    "merge_shard_reports",
    "print_table",
    "render_table",
    "run_experiment",
    "run_spec_sweep",
    "sampled_stretch_profile",
    "stretch_after_faults",
    "summarize",
]
