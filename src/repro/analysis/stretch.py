"""Stretch measurement under faults — the observable behind experiment E3.

These helpers quantify *how much* slack a fault-tolerant spanner has, not
just whether it is valid: for sampled (or enumerated) fault sets they
report the worst multiplicative stretch the survivor subgraph exhibits
against the survivor host graph.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable, Iterable, List, Optional, Sequence, Tuple

from ..core.verify import fault_sets
from ..graph.graph import BaseGraph
from ..graph.paths import dijkstra
from ..rng import RandomLike, ensure_rng

Vertex = Hashable


def stretch_after_faults(
    spanner: BaseGraph, graph: BaseGraph, faults: Iterable[Vertex]
) -> float:
    """Worst stretch of ``H \\ F`` relative to ``G \\ F`` over surviving edges.

    Returns 1.0 for an edgeless survivor host and ``inf`` when some
    surviving host edge's endpoints are disconnected in the survivor
    spanner.
    """
    fault_set = set(faults)
    g_f = graph.without_vertices(fault_set)
    h_f = spanner.without_vertices(fault_set)
    worst = 1.0
    for u in g_f.vertices():
        out = (
            list(g_f.successors(u)) if g_f.directed else list(g_f.neighbors(u))
        )
        if not out:
            continue
        dist_g = dijkstra(g_f, u)
        dist_h = dijkstra(h_f, u)
        for v in out:
            denom = dist_g[v]
            numer = dist_h.get(v, math.inf)
            if denom == 0:
                if numer > 0:
                    return math.inf
                continue
            worst = max(worst, numer / denom)
            if worst == math.inf:
                return worst
    return worst


@dataclass
class StretchProfile:
    """Distribution of post-fault stretch over a collection of fault sets."""

    samples: List[float] = field(default_factory=list)

    @property
    def max(self) -> float:
        return max(self.samples, default=1.0)

    @property
    def mean(self) -> float:
        finite = [s for s in self.samples if not math.isinf(s)]
        if not finite:
            return math.inf if self.samples else 1.0
        return sum(finite) / len(finite)

    def fraction_within(self, k: float, tol: float = 1e-9) -> float:
        """Fraction of fault sets whose stretch stayed <= k."""
        if not self.samples:
            return 1.0
        good = sum(1 for s in self.samples if s <= k * (1 + tol))
        return good / len(self.samples)


def exhaustive_stretch_profile(
    spanner: BaseGraph, graph: BaseGraph, r: int
) -> StretchProfile:
    """Stretch over *every* fault set of size <= r (small instances)."""
    profile = StretchProfile()
    for faults in fault_sets(list(graph.vertices()), r):
        profile.samples.append(stretch_after_faults(spanner, graph, faults))
    return profile


def sampled_stretch_profile(
    spanner: BaseGraph,
    graph: BaseGraph,
    r: int,
    trials: int = 100,
    seed: RandomLike = None,
    exact_size: bool = True,
) -> StretchProfile:
    """Stretch over random fault sets (size exactly r, or uniform 0..r)."""
    rng = ensure_rng(seed)
    vertices = list(graph.vertices())
    profile = StretchProfile()
    for _ in range(trials):
        size = min(r, len(vertices))
        if not exact_size:
            size = rng.randint(0, size)
        faults = rng.sample(vertices, size) if size else []
        profile.samples.append(stretch_after_faults(spanner, graph, faults))
    return profile
