"""``repro sweep``: sharded multi-process execution of spec lists.

The E-suite experiments are embarrassingly parallel over
``(host, k, r, seed)`` points; this module is the driver that exploits
it without giving up a single byte of reproducibility:

* :class:`SweepPlan` — an ordered list of :class:`repro.spec.SpannerSpec`
  values plus a table of *shared host refs* (each host graph is stored
  once, whether inline or as a path, no matter how many specs run on it),
  JSON round-tripping exactly like a spec;
* :meth:`SweepPlan.resolve_seeds` — replays the session seed-derivation
  rule (:func:`repro.session.derive_build_seed`) over the plan, so every
  spec carries the seed a sequential :meth:`repro.session.Session
  .build_many` would have resolved for it;
* :meth:`SweepPlan.shard` — a deterministic, seed-preserving,
  host-grouped partition: specs are ordered by host first-appearance and
  cut into ``of`` contiguous chunks, so each worker primes one CSR
  snapshot per host it owns;
* :func:`run_sweep` — the :mod:`multiprocessing` driver: each shard runs
  in its own spawned worker process under an optional per-shard
  wall-clock timeout (``shard_timeout_s=`` or
  ``REPRO_SWEEP_SHARD_TIMEOUT_S``; a hung worker is killed and the shard
  retried, with ``attempts`` and ``timed_out`` recorded in the
  envelope), persists one :class:`repro.spec.BuildReport` envelope file
  (``shard-<i>.json``) with wall times kept *outside* the report list,
  and the merge layer
  (:func:`repro.analysis.experiments.merge_shard_reports`) recombines
  shards into exactly the sequential path's reports — byte-identical for
  the same plan and seeds;
* :func:`emit_grid_plan` / :func:`coverage_matrix` — the plan emitter
  over a parameter grid, driven by the registry's machine-readable
  capability flags so unsupported ``(algorithm, fault kind, stretch)``
  points are refused before any worker is spawned.

The CLI surface is ``repro sweep`` / ``repro merge``
(:mod:`repro.cli`); the E1/E2/E9 benchmarks ride :func:`run_sweep`
directly.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import tempfile
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .errors import InvalidSpec, SweepError
from .graph.graph import BaseGraph
from .graph.io import graph_from_dict, graph_to_dict, load_json
from .hosts import HostSpec, get_host_generator, is_host_document
from .registry import get_algorithm
from .rng import RandomLike, ensure_rng
from .spec import FAULT_KINDS, FaultModel, SpannerSpec

#: Format tags stamped into serialized sweep documents.
PLAN_FORMAT = "repro-sweep-plan"
SHARD_FORMAT = "repro-sweep-shard"
SWEEP_VERSION = 1

#: File-name pattern of persisted shard envelopes.
SHARD_FILE = "shard-{index}.json"


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse the CLI's ``i/of`` shard syntax into ``(index, of)``."""
    try:
        index_text, of_text = text.split("/", 1)
        index, of = int(index_text), int(of_text)
    except ValueError:
        raise InvalidSpec(
            f"shard must look like 'i/of' (e.g. 0/4), got {text!r}"
        ) from None
    if of < 1 or not 0 <= index < of:
        raise InvalidSpec(
            f"shard index must satisfy 0 <= i < of with of >= 1, got {text!r}"
        )
    return index, of


def host_spec_key(spec: HostSpec) -> str:
    """The canonical hosts-table key of a :class:`HostSpec` entry.

    Generator name + content fingerprint: readable in plan documents and
    stable across machines/hash seeds, so scheduler manifests built over
    spec-carried hosts never churn.
    """
    return f"{spec.generator}-{spec.fingerprint()}"


@dataclass(frozen=True)
class SweepPlan:
    """An ordered spec list with shared host refs — the unit of sharding.

    ``specs`` carry no graph bindings of their own; ``host_keys[i]`` names
    the entry of ``hosts`` that spec ``i`` runs on (a path string, an
    inline :class:`repro.graph.graph.BaseGraph`, or a
    :class:`repro.hosts.HostSpec` materialized lazily — once per plan
    instance, so per worker — on first use). ``indices`` are the
    positions in the *parent* plan (identity for a full plan), and
    ``shard_id`` / ``plan_fingerprint`` identify a shard's provenance so the
    merge layer can verify it recombines pieces of one plan.

    Construct full plans with :meth:`build` (which hoists per-spec graph
    bindings into the shared host table) rather than the raw constructor.
    """

    specs: Tuple[SpannerSpec, ...]
    host_keys: Tuple[str, ...]
    hosts: Mapping[str, Any]
    name: str = "sweep"
    indices: Optional[Tuple[int, ...]] = None
    shard_id: Optional[Tuple[int, int]] = None
    plan_fingerprint: Optional[str] = None
    plan_size: Optional[int] = None
    #: Emission metadata only (grid points :func:`emit_grid_plan` dropped
    #: under ``skip_unsupported``, with reasons). Not serialized — a
    #: loaded plan reports no skips.
    skipped: Tuple[str, ...] = field(default=(), compare=False)
    _graph_cache: Dict[str, BaseGraph] = field(
        default_factory=dict, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if len(self.specs) != len(self.host_keys):
            raise InvalidSpec(
                f"plan has {len(self.specs)} specs but "
                f"{len(self.host_keys)} host keys"
            )
        for key in self.host_keys:
            if key not in self.hosts:
                raise InvalidSpec(
                    f"plan references host {key!r} but its hosts table only "
                    f"has {sorted(self.hosts)}"
                )
        for key, host in self.hosts.items():
            if not isinstance(host, (str, BaseGraph, HostSpec)):
                raise InvalidSpec(
                    f"hosts[{key!r}] must be a path str, a repro graph, or "
                    f"a HostSpec, got {host!r}"
                )
        for spec in self.specs:
            if spec.graph is not None:
                raise InvalidSpec(
                    "plan specs must not carry their own graph binding "
                    "(hosts are shared through the plan's host table); "
                    "use SweepPlan.build(...) to hoist bindings"
                )
        if self.indices is not None and len(self.indices) != len(self.specs):
            raise InvalidSpec(
                f"plan has {len(self.specs)} specs but {len(self.indices)} "
                "parent indices"
            )

    # -- construction --------------------------------------------------

    @classmethod
    def build(
        cls,
        specs: Sequence[SpannerSpec],
        graph: Optional[BaseGraph] = None,
        name: str = "sweep",
    ) -> "SweepPlan":
        """Build a full plan, hoisting graph bindings into shared hosts.

        Specs bound to the same in-memory graph instance, the same path,
        or an equal :class:`repro.hosts.HostSpec` share one host entry;
        specs with no binding fall back to the ``graph`` argument. Paths
        and host specs are kept as refs (workers load/materialize them);
        instances are serialized inline exactly once.
        """
        bindings: List[Any] = []
        for position, spec in enumerate(specs):
            bound = spec.graph if spec.graph is not None else graph
            if bound is None:
                raise InvalidSpec(
                    f"plan spec #{position} ({spec.algorithm!r}) has no host: "
                    "bind one via SpannerSpec(graph=...) or pass graph= to "
                    "SweepPlan.build"
                )
            bindings.append(bound)
        # Path and host-spec hosts claim their (content-derived) keys
        # first; inline instances then pick generated names around them,
        # so a path that happens to be called "host-0" can never collide
        # with (or be clobbered by) a generated inline key.
        hosts: Dict[str, Any] = {
            bound: bound for bound in bindings if isinstance(bound, str)
        }
        for bound in bindings:
            if isinstance(bound, HostSpec):
                hosts[host_spec_key(bound)] = bound
        keys_by_id: Dict[int, str] = {}
        counter = 0
        host_keys: List[str] = []
        for bound in bindings:
            if isinstance(bound, str):
                key = bound
            elif isinstance(bound, HostSpec):
                key = host_spec_key(bound)
            else:
                key = keys_by_id.get(id(bound))
                if key is None:
                    key = f"host-{counter}"
                    counter += 1
                    while key in hosts:
                        key = f"host-{counter}"
                        counter += 1
                    keys_by_id[id(bound)] = key
                    hosts[key] = bound
            host_keys.append(key)
        stripped = tuple(
            spec if spec.graph is None else spec.replace(graph=None)
            for spec in specs
        )
        return cls(
            specs=stripped,
            host_keys=tuple(host_keys),
            hosts=hosts,
            name=name,
        )

    # -- basic queries -------------------------------------------------

    def __len__(self) -> int:
        return len(self.specs)

    @property
    def is_resolved(self) -> bool:
        """Whether every spec carries an explicit seed."""
        return all(spec.seed is not None for spec in self.specs)

    @property
    def total_size(self) -> int:
        """Spec count of the (parent) plan — what a full merge must cover."""
        return self.plan_size if self.plan_size is not None else len(self.specs)

    @property
    def parent_indices(self) -> Tuple[int, ...]:
        """Positions in the parent plan (identity for a full plan)."""
        if self.indices is not None:
            return self.indices
        return tuple(range(len(self.specs)))

    def host_graph(self, key: str) -> BaseGraph:
        """The host graph behind ``key``.

        Paths are loaded and :class:`repro.hosts.HostSpec` entries are
        materialized once per plan instance — so lazily, once per
        worker, never at plan-construction or serialization time.
        """
        host = self.hosts[key]
        if isinstance(host, BaseGraph):
            return host
        cached = self._graph_cache.get(key)
        if cached is None:
            cached = (
                host.materialize() if isinstance(host, HostSpec)
                else load_json(host)
            )
            self._graph_cache[key] = cached
        return cached

    def _host_fingerprint_doc(self, key: str) -> Dict[str, Any]:
        """What one host contributes to :meth:`fingerprint`.

        Spec-carried hosts hash by their *spec document* — no
        materialization, so scheduler manifests over generated hosts are
        computed instantly and stay stable across machines. The corpus
        loader additionally mixes in the file's content digest (the spec
        names a path; the fingerprint must pin the data behind it).
        Graph and path hosts hash by loaded graph content, as before.
        """
        host = self.hosts[key]
        if isinstance(host, HostSpec):
            doc = host.to_dict()
            if host.generator == "corpus":
                from .hosts.builtin import corpus_content_digest

                doc["content"] = corpus_content_digest(str(host.param("path")))
            return doc
        return graph_to_dict(self.host_graph(key))

    def fingerprint(self) -> str:
        """Stable digest identifying the (parent) plan *and its hosts*.

        Shards inherit their parent's fingerprint, so envelopes produced
        by different workers from the same plan agree on it — the merge
        layer's consistency check. Path hosts are hashed by their loaded
        graph *content*, not the path string: shards of nominally the
        same plan run against divergent copies of ``host.json`` on two
        machines must refuse to merge, not silently mix graphs.
        Spec-carried hosts are hashed by spec (see
        :meth:`_host_fingerprint_doc`).
        """
        if self.plan_fingerprint is not None:
            return self.plan_fingerprint
        doc = self.to_dict()
        doc.pop("indices", None)
        doc.pop("shard", None)
        doc.pop("plan", None)
        doc.pop("plan_size", None)
        doc["hosts"] = {
            key: self._host_fingerprint_doc(key) for key in self.hosts
        }
        blob = json.dumps(doc, sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()[:16]

    # -- seed resolution ----------------------------------------------

    def resolve_seeds(self, seed: RandomLike = None) -> "SweepPlan":
        """A plan whose every spec carries an explicit seed.

        Replays exactly the sequential session rule: spec ``i`` keeps its
        own seed when set, and otherwise gets
        :func:`repro.session.derive_build_seed` at build index ``i`` from
        a root stream seeded with ``seed`` — so ``Session(seed=s)
        .build_many(plan.specs)`` and any sharding of
        ``plan.resolve_seeds(s)`` resolve identical seeds.
        """
        from .session import derive_build_seed

        if self.is_resolved:
            return self
        root = ensure_rng(seed)
        resolved = []
        for index, spec in enumerate(self.specs):
            if spec.seed is not None:
                resolved.append(spec)
            else:
                resolved.append(
                    spec.replace(seed=derive_build_seed(root, index))
                )
        return replace(self, specs=tuple(resolved))

    # -- sharding ------------------------------------------------------

    def host_grouped_order(self) -> List[int]:
        """Plan positions ordered by host first-appearance, stably.

        This is the one ordering rule of the sharder: contiguous chunks
        of this order keep each host's specs together, so a worker pays
        for at most one CSR snapshot per host it owns (plus at most one
        host split across a chunk boundary).
        """
        first_seen: Dict[str, int] = {}
        for key in self.host_keys:
            first_seen.setdefault(key, len(first_seen))
        return sorted(
            range(len(self.specs)),
            key=lambda p: (first_seen[self.host_keys[p]], p),
        )

    def shard(self, index: int, of: int) -> "SweepPlan":
        """The ``index``-th of ``of`` deterministic, seed-preserving shards.

        Requires a resolved plan (:meth:`resolve_seeds`): seeds depend on
        the *global* build order, so sharding an unresolved plan would
        silently re-derive them per worker and break merge identity.
        Shard sizes differ by at most one spec.
        """
        if of < 1 or not 0 <= index < of:
            raise InvalidSpec(
                f"shard index must satisfy 0 <= index < of, got {index}/{of}"
            )
        if not self.is_resolved:
            raise InvalidSpec(
                "cannot shard an unresolved plan (seeds would be re-derived "
                "per worker); call plan.resolve_seeds(seed) first"
            )
        order = self.host_grouped_order()
        total = len(order)
        base, extra = divmod(total, of)
        start = index * base + min(index, extra)
        size = base + (1 if index < extra else 0)
        positions = order[start:start + size]
        keys = {self.host_keys[p] for p in positions}
        parent = self.parent_indices
        return replace(
            self,
            specs=tuple(self.specs[p] for p in positions),
            host_keys=tuple(self.host_keys[p] for p in positions),
            hosts={k: v for k, v in self.hosts.items() if k in keys},
            indices=tuple(parent[p] for p in positions),
            shard_id=(index, of),
            plan_fingerprint=self.fingerprint(),
            plan_size=self.total_size,
        )

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-compatible plan document (hosts stored once)."""
        doc: Dict[str, Any] = {
            "format": PLAN_FORMAT,
            "version": SWEEP_VERSION,
            "name": self.name,
            "hosts": {
                key: (
                    host if isinstance(host, str)
                    else host.to_dict() if isinstance(host, HostSpec)
                    else graph_to_dict(host)
                )
                for key, host in self.hosts.items()
            },
            "specs": [
                dict(spec.to_dict(include_graph=False), host=key)
                for spec, key in zip(self.specs, self.host_keys)
            ],
        }
        if self.indices is not None:
            doc["indices"] = list(self.indices)
        if self.shard_id is not None:
            doc["shard"] = {"index": self.shard_id[0], "of": self.shard_id[1]}
        if self.plan_fingerprint is not None:
            doc["plan"] = self.plan_fingerprint
        if self.plan_size is not None:
            doc["plan_size"] = self.plan_size
        return doc

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepPlan":
        """Inverse of :meth:`to_dict`; strict about shape and keys."""
        if not isinstance(data, Mapping):
            raise InvalidSpec(f"sweep plan must be a mapping, got {data!r}")
        if data.get("format") != PLAN_FORMAT:
            raise InvalidSpec(
                f"not a sweep-plan document: format={data.get('format')!r} "
                f"(expected {PLAN_FORMAT!r})"
            )
        if data.get("version", SWEEP_VERSION) != SWEEP_VERSION:
            raise InvalidSpec(
                f"unsupported sweep-plan version {data.get('version')!r} "
                f"(this library reads version {SWEEP_VERSION})"
            )
        known = {"format", "version", "name", "hosts", "specs", "indices",
                 "shard", "plan", "plan_size"}
        extra = set(data) - known
        if extra:
            raise InvalidSpec(
                f"sweep-plan document has unknown keys {sorted(extra)}; "
                f"expected a subset of {sorted(known)}"
            )
        hosts_doc = data.get("hosts", {})
        if not isinstance(hosts_doc, Mapping):
            raise InvalidSpec(f"plan hosts must be a mapping, got {hosts_doc!r}")
        hosts: Dict[str, Any] = {}
        for key, host in hosts_doc.items():
            if is_host_document(host):
                hosts[key] = HostSpec.from_dict(dict(host))
            elif isinstance(host, Mapping):
                hosts[key] = graph_from_dict(dict(host))
            else:
                hosts[key] = host
        specs: List[SpannerSpec] = []
        host_keys: List[str] = []
        for entry in data.get("specs", []):
            if not isinstance(entry, Mapping) or "host" not in entry:
                raise InvalidSpec(
                    f"each plan spec entry needs a 'host' key, got {entry!r}"
                )
            entry = dict(entry)
            host_keys.append(entry.pop("host"))
            specs.append(SpannerSpec.from_dict(entry))
        shard_doc = data.get("shard")
        shard = (
            (shard_doc["index"], shard_doc["of"]) if shard_doc is not None else None
        )
        indices = data.get("indices")
        return cls(
            specs=tuple(specs),
            host_keys=tuple(host_keys),
            hosts=hosts,
            name=data.get("name", "sweep"),
            indices=tuple(indices) if indices is not None else None,
            shard_id=shard,
            plan_fingerprint=data.get("plan"),
            plan_size=data.get("plan_size"),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Canonical JSON text (sorted keys, so output is reproducible)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SweepPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise InvalidSpec(f"sweep plan is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    def save(self, path: str) -> None:
        """Write the plan as a JSON file (consumed by ``repro sweep``)."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "SweepPlan":
        """Read a plan JSON file written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


# ---------------------------------------------------------------------------
# Shard execution and envelopes
# ---------------------------------------------------------------------------


def run_shard(plan: SweepPlan, include_spanner: bool = False) -> Dict[str, Any]:
    """Execute one (shard) plan in-process and return its envelope.

    The envelope's ``reports`` list holds the deterministic
    :meth:`repro.spec.BuildReport.to_dict` documents in shard order;
    wall-clock times and the session's CSR snapshot counters live in the
    sibling ``timing`` section, so concatenating ``reports`` across
    shards is byte-identical to the sequential path. With
    ``include_spanner`` the spanner edge lists ride along (still
    deterministic — needed when the merged reports feed verification).
    """
    from .session import Session

    if not plan.is_resolved:
        raise InvalidSpec(
            "cannot run an unresolved plan shard; call plan.resolve_seeds "
            "(run_sweep does this for the whole plan before sharding)"
        )
    session = Session()
    reports = []
    wall_times = []
    for spec, key in zip(plan.specs, plan.host_keys):
        report = session.build(spec, graph=plan.host_graph(key))
        reports.append(report.to_dict(include_spanner=include_spanner))
        wall_times.append(report.wall_time_s)
    index, of = plan.shard_id if plan.shard_id is not None else (0, 1)
    return {
        "format": SHARD_FORMAT,
        "version": SWEEP_VERSION,
        "plan": plan.fingerprint(),
        "plan_name": plan.name,
        "shard": {"index": index, "of": of},
        "plan_size": plan.total_size,
        "indices": list(plan.parent_indices),
        "attempts": 1,
        "timed_out": False,
        "reports": reports,
        "timing": {
            "wall_times_s": wall_times,
            "snapshot_builds": session.snapshot_builds,
            "snapshot_hits": session.snapshot_hits,
        },
    }


def _run_shard_worker(doc: Dict[str, Any], include_spanner: bool) -> Dict[str, Any]:
    """Worker entry point: rebuild the shard plan from its document.

    Top-level (picklable) so it works under every multiprocessing start
    method, including ``spawn``.
    """
    return run_shard(SweepPlan.from_dict(doc), include_spanner=include_spanner)


def shard_report_path(reports_dir: str, index: int) -> str:
    """The canonical envelope path for shard ``index``."""
    return os.path.join(reports_dir, SHARD_FILE.format(index=index))


def save_shard_report(envelope: Dict[str, Any], reports_dir: str) -> str:
    """Persist one shard envelope under its canonical name, crash-safely.

    The document is serialized to a temp file *in* ``reports_dir`` and
    ``os.replace``d into place (atomic on POSIX and Windows within one
    filesystem), so a worker killed mid-write leaves either no
    ``shard-<i>.json`` or a complete one — never a truncated envelope
    for the strict merge layer to choke on.
    """
    os.makedirs(reports_dir, exist_ok=True)
    path = shard_report_path(reports_dir, envelope["shard"]["index"])
    blob = json.dumps(envelope, sort_keys=True, indent=2) + "\n"
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=reports_dir
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(blob)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        raise
    return path


def load_shard_report(path: str) -> Dict[str, Any]:
    """Read a shard envelope, validating its shape and format tag.

    Truncated or otherwise unparseable JSON — the leftovers of a killed
    *non-atomic* writer (library writers go through
    :func:`save_shard_report`, which replaces atomically) — raises a
    :class:`repro.errors.SweepError` naming the file and the fix, never
    a raw ``JSONDecodeError`` with no idea which shard is at fault.
    """
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SweepError(
            f"{path}: shard envelope is truncated or corrupt ({exc}); a "
            "worker killed mid-write through a non-atomic writer leaves "
            "exactly this — delete the file and re-run its shard (or let "
            "the scheduler reclaim it)"
        ) from exc
    if not isinstance(data, dict) or data.get("format") != SHARD_FORMAT:
        raise InvalidSpec(f"{path}: not a sweep-shard envelope")
    return data


#: Env knob: default per-shard wall-clock timeout for :func:`run_sweep`.
SHARD_TIMEOUT_ENV = "REPRO_SWEEP_SHARD_TIMEOUT_S"

#: Fault-injection knobs (tests/CI only): comma-separated shard indices
#: whose *first* attempt crashes (exit 23) or hangs in the child.
TEST_CRASH_ENV = "REPRO_SWEEP_TEST_CRASH_SHARDS"
TEST_HANG_ENV = "REPRO_SWEEP_TEST_HANG_SHARDS"


def resolve_shard_timeout(shard_timeout_s: Optional[float]) -> Optional[float]:
    """The effective per-shard timeout: explicit argument, else the env."""
    if shard_timeout_s is not None:
        if shard_timeout_s <= 0:
            raise InvalidSpec(
                f"shard_timeout_s must be positive, got {shard_timeout_s!r}"
            )
        return shard_timeout_s
    text = os.environ.get(SHARD_TIMEOUT_ENV)
    if not text:
        return None
    try:
        value = float(text)
    except ValueError:
        raise InvalidSpec(
            f"{SHARD_TIMEOUT_ENV} must be a number of seconds, got {text!r}"
        ) from None
    if value <= 0:
        raise InvalidSpec(
            f"{SHARD_TIMEOUT_ENV} must be positive, got {text!r}"
        )
    return value


def _env_index_set(name: str) -> frozenset:
    text = os.environ.get(name, "")
    return frozenset(
        int(part) for part in text.split(",") if part.strip() != ""
    )


def _spooled_shard_worker(
    doc: Dict[str, Any], include_spanner: bool, spool_dir: str, attempt: int
) -> None:
    """Worker-process entry: run one shard, spool its envelope atomically.

    The parent learns success by the envelope's existence plus a zero
    exit code, so a worker killed at any instant (crash, timeout kill,
    SIGKILL from outside) is indistinguishable from the merge layer's
    point of view: either no envelope or a complete one. First attempts
    honor the fault-injection env knobs so crash/hang recovery is
    testable end to end with *real* processes.
    """
    index = (doc.get("shard") or {}).get("index", 0)
    if attempt == 1:
        if index in _env_index_set(TEST_CRASH_ENV):
            os._exit(23)
        if index in _env_index_set(TEST_HANG_ENV):
            time.sleep(3600)  # parked until the timeout kill arrives
    envelope = run_shard(
        SweepPlan.from_dict(doc), include_spanner=include_spanner
    )
    envelope["attempts"] = attempt
    save_shard_report(envelope, spool_dir)


def _join_with_timeouts(
    procs: Dict[int, multiprocessing.Process],
    deadlines: Dict[int, Optional[float]],
) -> Dict[int, bool]:
    """Wait for every process; kill any that outlives its deadline.

    Returns ``{index: timed_out}``. Polling at 50 ms keeps the driver
    simple (no SIGCHLD plumbing) and costs nothing against shard
    runtimes measured in seconds.
    """
    timed_out = {index: False for index in procs}
    pending = set(procs)
    while pending:
        for index in sorted(pending):
            proc = procs[index]
            proc.join(0.05)
            if not proc.is_alive():
                pending.discard(index)
                continue
            deadline = deadlines[index]
            if deadline is not None and time.monotonic() >= deadline:
                timed_out[index] = True
                proc.terminate()
                proc.join(2.0)
                if proc.is_alive():  # pragma: no cover - terminate sufficed
                    proc.kill()
                    proc.join()
                pending.discard(index)
    return timed_out


def _retry_in_subprocess(
    context,
    doc: Dict[str, Any],
    include_spanner: bool,
    spool_dir: str,
    timeout_s: Optional[float],
) -> bool:
    """Second attempt of a timed-out shard, under its own fresh timeout.

    A timed-out shard must never be retried in-process: if it hangs
    again there is no process boundary left to kill, and the sweep would
    wedge — the exact failure mode this driver exists to rule out.
    """
    proc = context.Process(
        target=_spooled_shard_worker,
        args=(doc, include_spanner, spool_dir, 2),
    )
    proc.start()
    deadline = (
        time.monotonic() + timeout_s if timeout_s is not None else None
    )
    timed_out = _join_with_timeouts({0: proc}, {0: deadline})
    return not timed_out[0] and proc.exitcode == 0


def run_sweep(
    plan: SweepPlan,
    workers: int = 1,
    reports_dir: Optional[str] = None,
    seed: RandomLike = 0,
    include_spanner: bool = False,
    with_envelopes: bool = False,
    shard_timeout_s: Optional[float] = None,
):
    """Execute a whole plan across ``workers`` processes and merge.

    The plan's seeds are resolved first (no-op when already explicit), so
    every partition resolves identically; each worker process runs one
    host-grouped shard, spools its envelope atomically (under
    ``reports_dir`` when given, a temp spool otherwise), and the parent
    rehydrates from the spool. Returns the merged
    :class:`repro.spec.BuildReport` list in plan order — rehydrated from
    the envelopes even for ``workers=1``, so the sequential path
    exercises exactly the serialization surface the sharded one does.
    With ``with_envelopes`` the raw envelopes ride along as
    ``(reports, envelopes)``.

    Failure handling, per shard: a *crashed* worker (non-zero exit, no
    envelope) gets one deterministic in-process retry — ``run_shard`` is
    a pure function of the resolved plan. A worker that outlives
    ``shard_timeout_s`` (or ``REPRO_SWEEP_SHARD_TIMEOUT_S``) wall-clock
    seconds is *killed* and retried once in a fresh subprocess under a
    fresh deadline — never in-process, where a second hang could not be
    killed. Retried envelopes carry ``attempts`` (and ``timed_out`` for
    the timeout path); a shard failing both attempts raises
    :class:`repro.errors.SweepError`. For unbounded-retry and
    cross-machine recovery, use :mod:`repro.sched` instead.
    """
    from .analysis.experiments import merge_shard_reports

    if workers < 1:
        raise InvalidSpec(f"workers must be >= 1, got {workers}")
    timeout_s = resolve_shard_timeout(shard_timeout_s)
    plan = plan.resolve_seeds(seed)
    workers = min(workers, max(len(plan), 1))
    if workers == 1:
        envelopes = [run_shard(plan, include_spanner=include_spanner)]
        if reports_dir is not None:
            for envelope in envelopes:
                save_shard_report(envelope, reports_dir)
        reports = merge_shard_reports(envelopes)
        if with_envelopes:
            return reports, envelopes
        return reports
    shards = [plan.shard(i, workers) for i in range(workers)]
    docs = [shard.to_dict() for shard in shards]
    context = multiprocessing.get_context("spawn")
    with tempfile.TemporaryDirectory(prefix="repro-sweep-spool-") as tmp_spool:
        spool = reports_dir if reports_dir is not None else tmp_spool
        procs: Dict[int, multiprocessing.Process] = {}
        deadlines: Dict[int, Optional[float]] = {}
        for index, doc in enumerate(docs):
            proc = context.Process(
                target=_spooled_shard_worker,
                args=(doc, include_spanner, spool, 1),
            )
            proc.start()
            procs[index] = proc
            deadlines[index] = (
                time.monotonic() + timeout_s if timeout_s is not None else None
            )
        timed_out = _join_with_timeouts(procs, deadlines)
        envelopes = []
        for index in range(workers):
            path = shard_report_path(spool, index)
            if os.path.exists(path):
                # The atomic writer guarantees a present envelope is a
                # complete one — even if the worker was then killed at
                # the deadline or crashed during teardown.
                envelopes.append(load_shard_report(path))
                continue
            if timed_out[index]:
                first = (
                    f"worker exceeded the {timeout_s}s per-shard "
                    "wall-clock timeout and was killed"
                )
                ok = _retry_in_subprocess(
                    context, docs[index], include_spanner, spool, timeout_s
                )
                if not ok or not os.path.exists(path):
                    raise SweepError(
                        f"shard {index}/{workers} of plan "
                        f"{plan.fingerprint()!s} failed twice: {first}; "
                        "the subprocess retry "
                        + ("timed out as well" if not ok
                           else "exited without an envelope")
                    )
                envelope = load_shard_report(path)
                envelope["attempts"] = 2
                envelope["timed_out"] = True
                save_shard_report(envelope, spool)
                envelopes.append(envelope)
                continue
            first = f"worker exited with code {procs[index].exitcode}"
            try:
                envelope = _run_shard_worker(docs[index], include_spanner)
            except Exception as retry_error:
                raise SweepError(
                    f"shard {index}/{workers} of plan "
                    f"{plan.fingerprint()!s} failed twice: {first}; "
                    f"in-process retry raised {retry_error!r}"
                ) from retry_error
            envelope["attempts"] = 2
            save_shard_report(envelope, spool)
            envelopes.append(envelope)
        reports = merge_shard_reports(envelopes)
    if with_envelopes:
        return reports, envelopes
    return reports


# ---------------------------------------------------------------------------
# Grid emission and the capability coverage matrix
# ---------------------------------------------------------------------------


def _fault_model(kind: str, r: int) -> FaultModel:
    """The fault model of one grid point (r = 0 means no faults)."""
    if r == 0 or kind == "none":
        return FaultModel.none()
    return FaultModel(kind, r)


def _host_algorithm_reason(host: Any, info: Any) -> Optional[str]:
    """Why ``host`` cannot feed algorithm ``info``, or ``None``.

    Spec-carried hosts answer from their registered capabilities
    (:meth:`repro.hosts.HostInfo.unsupported_reason`) without being
    materialized; inline graphs answer from the instance. Path hosts
    (and ``corpus`` specs, whose directedness depends on the file) pass
    — their mismatches surface at build time through the session's
    capability check.
    """
    if isinstance(host, HostSpec):
        return get_host_generator(host.generator).unsupported_reason(info)
    if isinstance(host, BaseGraph) and host.directed and not info.directed:
        return (
            f"host is directed but algorithm {info.name!r} only serves "
            "undirected hosts"
        )
    return None


def emit_grid_plan(
    algorithms: Sequence[str],
    stretches: Sequence[float],
    rs: Sequence[int],
    hosts: Optional[Mapping[str, Any]] = None,
    fault_kind: str = "vertex",
    seeds: int = 1,
    seed_base: int = 0,
    method: str = "auto",
    params: Optional[Mapping[str, Any]] = None,
    name: str = "sweep",
    skip_unsupported: bool = False,
    topologies: Optional[Sequence[Any]] = None,
) -> SweepPlan:
    """Emit a resolved plan over the ``(host, algorithm, k, r, seed)`` grid.

    Hosts come from the explicit ``hosts`` mapping (paths / graphs /
    :class:`repro.hosts.HostSpec` values under caller-chosen keys), the
    ``topologies`` axis (``HostSpec`` values — or bare generator names
    for parameter-free families — keyed by :func:`host_spec_key`), or
    both.

    Every point is checked against the machine-readable capability flags
    of *both* registries: algorithm-side
    (:meth:`repro.registry.AlgorithmInfo.unsupported_reason` over
    ``(fault kind, r, stretch)``) and host-side
    (:meth:`repro.hosts.HostInfo.unsupported_reason` — a directed-only
    host refuses an undirected-only builder before anything is
    materialized). Out-of-domain points raise
    :class:`repro.errors.InvalidSpec` naming the point and the reason —
    or are dropped under ``skip_unsupported`` (the coverage-matrix
    behaviour), with every dropped point and its reason recorded on the
    returned plan's :attr:`SweepPlan.skipped` so an incomplete grid
    never reads as full coverage. Seeds are
    explicit (``seed_base .. seed_base + seeds - 1`` per point), so the
    emitted plan is already resolved and shards immediately.
    """
    if not algorithms:
        raise InvalidSpec("emit_grid_plan needs at least one algorithm")
    all_hosts: Dict[str, Any] = dict(hosts or {})
    for topology in topologies or ():
        spec = topology if isinstance(topology, HostSpec) else HostSpec(topology)
        get_host_generator(spec.generator).validate(spec)  # eager, pre-worker
        key = host_spec_key(spec)
        existing = all_hosts.get(key)
        if existing is not None and existing != spec:
            raise InvalidSpec(
                f"topology key {key!r} collides with an existing host entry"
            )
        all_hosts[key] = spec
    if not all_hosts:
        raise InvalidSpec(
            "emit_grid_plan needs at least one host (hosts= or topologies=)"
        )
    if fault_kind not in FAULT_KINDS:
        raise InvalidSpec(
            f"fault kind must be one of {FAULT_KINDS}, got {fault_kind!r}"
        )
    if fault_kind == "none" and any(r != 0 for r in rs):
        raise InvalidSpec(
            f"fault_kind='none' only admits r=0 grid points, got rs={list(rs)}; "
            "use fault_kind='vertex' or 'edge' for the r >= 1 axis"
        )
    if seeds < 1:
        raise InvalidSpec(f"seeds must be >= 1, got {seeds}")
    specs: List[SpannerSpec] = []
    host_keys: List[str] = []
    skipped: List[str] = []
    for host_key in all_hosts:
        for algorithm in algorithms:
            info = get_algorithm(algorithm)
            host_reason = _host_algorithm_reason(all_hosts[host_key], info)
            if host_reason is not None:
                point = f"(host={host_key}, algorithm={algorithm})"
                if skip_unsupported:
                    skipped.append(f"{point}: {host_reason}")
                    continue
                raise InvalidSpec(
                    f"grid point {point} is unsupported: {host_reason}; "
                    "drop it from the grid or pass skip_unsupported"
                )
            for stretch in stretches:
                for r in rs:
                    kind = "none" if r == 0 else fault_kind
                    reason = info.unsupported_reason(kind, r, stretch)
                    if reason is not None:
                        point = (
                            f"(host={host_key}, algorithm={algorithm}, "
                            f"stretch={stretch}, r={r})"
                        )
                        if skip_unsupported:
                            skipped.append(f"{point}: {reason}")
                            continue
                        raise InvalidSpec(
                            f"grid point {point} is unsupported: {reason}; "
                            "drop it from the grid or pass skip_unsupported"
                        )
                    for s in range(seeds):
                        specs.append(
                            SpannerSpec(
                                algorithm=algorithm,
                                stretch=stretch,
                                faults=_fault_model(kind, r),
                                method=method,
                                seed=seed_base + s,
                                params=dict(params or {}),
                            )
                        )
                        host_keys.append(host_key)
    if not specs:
        raise InvalidSpec(
            "the parameter grid produced no supported spec points"
            + (f" (skipped: {'; '.join(skipped)})" if skipped else "")
        )
    used = set(host_keys)
    return SweepPlan(
        specs=tuple(specs),
        host_keys=tuple(host_keys),
        hosts={k: v for k, v in all_hosts.items() if k in used},
        name=name,
        skipped=tuple(skipped),
    )


def coverage_matrix(
    stretches: Sequence[float] = (2, 3, 5),
    kinds: Sequence[str] = FAULT_KINDS,
    r: int = 1,
) -> List[Dict[str, Any]]:
    """The E-suite coverage matrix, generated from the registry.

    One row per registered algorithm: which ``(fault kind, stretch)``
    points it can serve (``r`` stands in for any positive tolerance; the
    ``"none"`` column uses r = 0). This is what the plan emitter consults
    — the matrix and the refusals cannot disagree.
    """
    from .registry import available_algorithms

    rows = []
    for algorithm in available_algorithms():
        info = get_algorithm(algorithm)
        cells = {}
        for kind in kinds:
            point_r = 0 if kind == "none" else r
            for stretch in stretches:
                supported = (
                    info.unsupported_reason(kind, point_r, stretch) is None
                )
                cells[f"{kind}/k={stretch:g}"] = supported
        rows.append({"algorithm": algorithm, **cells})
    return rows


__all__ = [
    "PLAN_FORMAT",
    "parse_shard",
    "SHARD_FORMAT",
    "SweepPlan",
    "coverage_matrix",
    "emit_grid_plan",
    "host_spec_key",
    "load_shard_report",
    "run_shard",
    "run_sweep",
    "save_shard_report",
    "shard_report_path",
]
