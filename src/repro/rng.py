"""Seeded randomness helpers.

All randomized algorithms in this library accept either an integer seed or a
:class:`random.Random` instance, so experiments are reproducible end to end.
The helpers here normalize those inputs and derive independent child
generators for sub-components (for example, each iteration of the
fault-oversampling conversion gets its own stream, so changing the number of
iterations does not perturb earlier iterations).
"""

from __future__ import annotations

import random
from typing import Optional, Union

RandomLike = Union[int, random.Random, None]

#: Large odd multiplier used to decorrelate derived seeds (splitmix-style).
_DERIVE_MULTIPLIER = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def ensure_rng(seed: RandomLike = None) -> random.Random:
    """Return a :class:`random.Random` for ``seed``.

    ``None`` produces a fresh nondeterministically-seeded generator, an
    ``int`` produces a deterministic generator, and an existing
    :class:`random.Random` is returned unchanged (shared state).
    """
    if seed is None:
        return random.Random()
    if isinstance(seed, random.Random):
        return seed
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise TypeError(f"seed must be None, int, or random.Random, got {seed!r}")
    return random.Random(seed)


def derive_seed(rng: random.Random, index: int) -> int:
    """The 64-bit child seed ``derive_rng`` would use, without the generator.

    Consumes exactly the same one 64-bit draw from the parent as
    :func:`derive_rng`, so callers that want to defer (or skip) the
    comparatively expensive ``random.Random`` construction can advance the
    parent stream identically and build ``random.Random(seed)`` later.
    """
    base = rng.getrandbits(64)
    mixed = (base ^ ((index + 1) * _DERIVE_MULTIPLIER)) & _MASK64
    # splitmix64 finalizer for good bit diffusion.
    z = (mixed + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def derive_rng(rng: random.Random, index: int) -> random.Random:
    """Derive an independent child generator from ``rng`` for stream ``index``.

    The child is seeded from a 64-bit draw of the parent mixed with the
    stream index, which keeps distinct indices decorrelated while remaining
    deterministic given the parent's state.
    """
    return random.Random(derive_seed(rng, index))


def spawn_streams(seed: RandomLike, count: int) -> list[random.Random]:
    """Create ``count`` decorrelated generators from one seed."""
    if count < 0:
        raise ValueError(f"count must be nonnegative, got {count}")
    parent = ensure_rng(seed)
    return [derive_rng(parent, i) for i in range(count)]


def geometric(rng: random.Random, p: float) -> int:
    """Sample from a geometric distribution on {1, 2, ...} with parameter ``p``.

    Returns the number of Bernoulli(``p``) trials up to and including the
    first success. Used for Bartal-style padded-decomposition radii.
    """
    if not 0.0 < p <= 1.0:
        raise ValueError(f"p must be in (0, 1], got {p}")
    if p == 1.0:
        return 1
    trials = 1
    while rng.random() >= p:
        trials += 1
    return trials


def bernoulli(rng: random.Random, p: float) -> bool:
    """Return True with probability ``p``."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    return rng.random() < p


def sample_subset(rng: random.Random, items, p: float) -> set:
    """Independently include each element of ``items`` with probability ``p``."""
    return {item for item in items if rng.random() < p}
