"""repro.serve — the self-healing spanner service layer.

Everything above this package builds a spanner *once*; this package keeps
one **valid while the host graph changes underneath it**, which is the
regime the ROADMAP's north star (a long-lived spanner service) actually
cares about. Four modules:

* :mod:`repro.serve.workload` — seeded operation streams
  (``ADD_NODE`` / ``ADD_EDGE`` / ``DEL_EDGE`` / ``DEL_NODE`` /
  ``QUERY_DIST`` / ``READ_NBRS``) with JSON round-trip, in the
  WorkloadGenerator idiom of the graph-database benchmark suites;
* :mod:`repro.serve.repair` — the ``ft2-stream`` linear greedy builder
  (registered with :mod:`repro.registry`), fast enough to be the
  service's rebuild tier at n = 10^4;
* :mod:`repro.serve.service` — :class:`SpannerService`: applies an
  operation stream against a maintained FT 2-spanner with a **tiered
  repair policy** (patch → region rebuild → full rebuild) instead of
  rebuild-per-op, reporting :class:`ServiceHealth` per answer;
* :mod:`repro.serve.chaos` — :class:`ChaosInjector`: seeded burst
  deletions, including the adversarial "hit the spanner edges first"
  mode.
"""

from .chaos import ChaosInjector
from .repair import stream_ft2_spanner
from .service import (
    OpResult,
    RepairPolicy,
    ServiceHealth,
    ServiceStats,
    SpannerService,
    spanner_digest,
)
from .workload import (
    OP_TYPES,
    Operation,
    WorkloadGenerator,
    apply_mutations,
    load_workload,
    read_write_weights,
    save_workload,
)

__all__ = [
    "ChaosInjector",
    "OP_TYPES",
    "OpResult",
    "Operation",
    "RepairPolicy",
    "ServiceHealth",
    "ServiceStats",
    "SpannerService",
    "WorkloadGenerator",
    "apply_mutations",
    "load_workload",
    "read_write_weights",
    "save_workload",
    "spanner_digest",
    "stream_ft2_spanner",
]
