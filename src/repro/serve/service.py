"""The self-healing spanner service.

:class:`SpannerService` owns three coupled structures — the live host
graph, the maintained FT 2-spanner, and an extended
:class:`repro.core.verify.IncrementalFT2Verifier` that watches both — and
applies :mod:`repro.serve.workload` operations against them. Every
mutation updates the verifier in O(Δ), so the service always knows
*exactly which host edges* the spanner currently fails (Lemma 3.1
demands), without ever rescanning the graph.

Damage is repaired by a tiered :class:`RepairPolicy` instead of
rebuild-per-op:

1. **patch** — re-satisfy only the newly-unsatisfied host edges, choosing
   per edge between buying it outright and completing its cheapest
   missing two-path midpoints (cost-aware, deterministic);
2. **region** — past ``patch_threshold`` damage, drop and re-stream the
   spanner only inside the 1-hop region around the damage;
3. **full** — past ``rebuild_threshold``, a from-scratch
   :meth:`repro.session.Session.build` of the spec's algorithm.

Every tier ends with a Lemma 3.1-valid spanner, or the service says so:
reads are answered together with a :class:`ServiceHealth` state, and the
service *never* answers ``QUERY_DIST`` from an invalid spanner without
reporting ``degraded`` — the invariant the robustness tests pin down.
Lazy policies (``eager=False``) deliberately defer repairs to batch
damage, running degraded until :meth:`SpannerService.repair` is called
or the next repair trigger.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from ..core.verify import IncrementalFT2Verifier
from ..errors import InvalidSpec
from ..graph.csr import (
    MIN_DISPATCH_VERTICES,
    invalidate_snapshot,
    snapshot as csr_snapshot,
)
from ..graph.graph import BaseGraph
from ..graph.paths import dijkstra
from ..session import Session
from ..spec import FaultModel, SpannerSpec
from .repair import stream_ft2_spanner  # noqa: F401  (re-exported tier)
from .workload import (
    ADD_EDGE,
    ADD_NODE,
    DEL_EDGE,
    DEL_NODE,
    OP_TYPES,
    QUERY_DIST,
    READ_NBRS,
    Operation,
)

Vertex = Hashable


class ServiceHealth:
    """The service's self-reported states (plain strings, JSON-ready)."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    REBUILDING = "rebuilding"

    ALL = (HEALTHY, DEGRADED, REBUILDING)


#: Repair tier names, in escalation order.
TIERS = ("patch", "region", "full")


@dataclass(frozen=True)
class RepairPolicy:
    """When to escalate from local patching to rebuilding.

    ``damage`` is the fraction of live host edges currently unsatisfied.
    Up to ``patch_threshold`` the service patches locally; up to
    ``rebuild_threshold`` it re-streams the touched region; beyond that
    it rebuilds from scratch. ``eager=False`` defers all repair until a
    read arrives or :meth:`SpannerService.repair` is called, running
    ``degraded`` in between. ``always_full=True`` is the
    rebuild-per-mutation baseline the benchmark measures against.
    """

    patch_threshold: float = 0.02
    rebuild_threshold: float = 0.10
    eager: bool = True
    always_full: bool = False

    def __post_init__(self) -> None:
        if self.patch_threshold > self.rebuild_threshold:
            raise InvalidSpec(
                f"patch_threshold ({self.patch_threshold}) must not exceed "
                f"rebuild_threshold ({self.rebuild_threshold})"
            )

    @classmethod
    def rebuild_per_mutation(cls) -> "RepairPolicy":
        """The naive baseline: a full rebuild after every mutation."""
        return cls(patch_threshold=0.0, rebuild_threshold=0.0, always_full=True)

    @classmethod
    def lazy(
        cls, patch_threshold: float = 0.02, rebuild_threshold: float = 0.10
    ) -> "RepairPolicy":
        """Defer repairs; the service runs degraded between triggers."""
        return cls(
            patch_threshold=patch_threshold,
            rebuild_threshold=rebuild_threshold,
            eager=False,
        )

    def tier_for(self, damage_fraction: float) -> str:
        if self.always_full:
            return "full"
        if damage_fraction <= self.patch_threshold:
            return "patch"
        if damage_fraction <= self.rebuild_threshold:
            return "region"
        return "full"


@dataclass
class ServiceStats:
    """Op-level accounting; everything here is JSON-able."""

    ops: Dict[str, int] = field(
        default_factory=lambda: {t: 0 for t in OP_TYPES}
    )
    skipped: int = 0
    tiers: Dict[str, int] = field(
        default_factory=lambda: {t: 0 for t in TIERS}
    )
    repaired_edges: int = 0
    degraded_answers: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ops": dict(self.ops),
            "skipped": self.skipped,
            "tiers": dict(self.tiers),
            "repaired_edges": self.repaired_edges,
            "degraded_answers": self.degraded_answers,
        }


@dataclass
class OpResult:
    """Outcome of one applied operation.

    ``value`` is the answer for reads (distance or neighbour list; ``None``
    for unreachable / missing targets), ``tier`` the repair tier this op
    triggered (``None`` when no repair ran), ``damage`` the number of
    unsatisfied host edges *after* the op, and ``health`` the service
    state the answer was produced under.
    """

    index: int
    type: str
    ok: bool
    health: str
    value: Any = None
    tier: Optional[str] = None
    damage: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "type": self.type,
            "ok": self.ok,
            "health": self.health,
            "value": self.value,
            "tier": self.tier,
            "damage": self.damage,
        }


def spanner_digest(graph: BaseGraph) -> str:
    """Stable digest of a graph's edge set (orientation-canonical).

    Two graphs with the same vertex labels, directedness, edges, and
    weights share a digest regardless of insertion order or hash seed —
    the equality the serve CI asserts between the maintained spanner, a
    replay under a different ``PYTHONHASHSEED``, and a from-scratch
    rebuild on the final host.
    """
    rows = []
    for u, v, w in graph.edges():
        a, b = repr(u), repr(v)
        if not graph.directed and b < a:
            a, b = b, a
        rows.append([a, b, float(w)])
    rows.sort()
    blob = json.dumps({"directed": graph.directed, "edges": rows})
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


class SpannerService:
    """A long-lived FT 2-spanner kept valid under an operation stream.

    Parameters
    ----------
    graph:
        The initial host. The service takes ownership and mutates it in
        place as the stream is applied.
    spec:
        The build request for the (re)build tier; must have stretch 2.
        Defaults to ``ft2-stream`` with ``FaultModel.vertex(r)``.
    r:
        Shorthand fault tolerance when ``spec`` is omitted (default 1).
    policy:
        The :class:`RepairPolicy`; defaults to eager tiered repair.
    session:
        The executing :class:`repro.session.Session` (a fresh one with
        ``seed`` otherwise); rebuild seeds derive from it.
    """

    def __init__(
        self,
        graph: BaseGraph,
        spec: Optional[SpannerSpec] = None,
        *,
        r: int = 1,
        policy: Optional[RepairPolicy] = None,
        session: Optional[Session] = None,
        seed: Optional[int] = None,
    ) -> None:
        if spec is None:
            spec = SpannerSpec(
                "ft2-stream", stretch=2, faults=FaultModel.vertex(r)
            )
        if spec.stretch != 2:
            raise InvalidSpec(
                "SpannerService maintains Lemma 3.1 (stretch-2) invariants; "
                f"got a spec with stretch {spec.stretch!r}"
            )
        if spec.graph is not None:
            spec = spec.replace(graph=None)
        self.host = graph
        self.spec = spec
        self.r = spec.faults.r
        self._need = self.r + 1
        self.policy = policy or RepairPolicy()
        self.session = session or Session(seed=seed)
        self.stats = ServiceStats()
        self.health = ServiceHealth.HEALTHY
        self._ops_applied = 0
        report = self.session.build(spec, graph=graph)
        spanner = report.spanner
        if spanner is None:
            raise InvalidSpec(
                f"algorithm {spec.algorithm!r} did not produce a spanner graph"
            )
        self.spanner = spanner
        self.verifier = IncrementalFT2Verifier(graph, self.r, spanner)

    # -- introspection -------------------------------------------------

    @property
    def damage(self) -> int:
        """Host edges currently violating Lemma 3.1."""
        return self.verifier.num_unsatisfied

    @property
    def damage_fraction(self) -> float:
        return self.damage / max(1, self.verifier.num_host_edges)

    def is_valid(self) -> bool:
        """Whether the maintained spanner is Lemma 3.1-valid right now."""
        return self.verifier.is_valid()

    def summary(self) -> Dict[str, Any]:
        """JSON-able service summary (deterministic; no timing)."""
        return {
            "health": self.health,
            "valid": self.is_valid(),
            "damage": self.damage,
            "ops_applied": self._ops_applied,
            "host_vertices": self.host.num_vertices,
            "host_edges": self.host.num_edges,
            "spanner_edges": self.spanner.num_edges,
            "r": self.r,
            "algorithm": self.spec.algorithm,
            "policy": {
                "patch_threshold": self.policy.patch_threshold,
                "rebuild_threshold": self.policy.rebuild_threshold,
                "eager": self.policy.eager,
                "always_full": self.policy.always_full,
            },
            "stats": self.stats.to_dict(),
        }

    # -- spanner bookkeeping -------------------------------------------

    def _buy(self, u: Vertex, v: Vertex) -> None:
        """Add host edge ``(u, v)`` to the spanner (graph + verifier)."""
        if not self.spanner.has_edge(u, v):
            self.spanner.add_edge(u, v, self.host.weight(u, v))
            self.verifier.add_edge(u, v)
            self.stats.repaired_edges += 1

    def _drop_spanner_edge(self, u: Vertex, v: Vertex) -> None:
        self.spanner.remove_edge(u, v)
        self.verifier.remove_edge(u, v)

    # -- repair tiers --------------------------------------------------

    def _spanner_cost(self, u: Vertex, v: Vertex) -> float:
        """Cost of making ``(u, v)`` a spanner edge (0 if already there)."""
        return 0.0 if self.spanner.has_edge(u, v) else self.host.weight(u, v)

    def _patch_edge(self, u: Vertex, v: Vertex) -> None:
        """Re-satisfy one host edge: cheapest midpoints vs. buying it.

        Candidate midpoints are scanned in host adjacency (insertion)
        order, so the choice — and with it the repaired spanner — is
        independent of hash seeds.
        """
        verifier = self.verifier
        missing = self._need - verifier.count_two_paths(u, v)
        if missing <= 0 or verifier.has_edge(u, v):
            return
        host = self.host
        out_u = host.successors(u) if host.directed else host.neighbors(u)
        candidates: List[Tuple[float, int, Vertex]] = []
        for idx, z in enumerate(out_u):
            if z == v or not host.has_edge(z, v):
                continue
            if verifier.has_edge(u, z) and verifier.has_edge(z, v):
                continue  # midpoint already counted
            cost = self._spanner_cost(u, z) + self._spanner_cost(z, v)
            candidates.append((cost, idx, z))
        candidates.sort()
        chosen = candidates[:missing]
        edge_cost = self.host.weight(u, v)
        if len(chosen) < missing or sum(c for c, _i, _z in chosen) > edge_cost:
            self._buy(u, v)
            return
        for _cost, _idx, z in chosen:
            self._buy(u, z)
            self._buy(z, v)

    def _patch(self) -> None:
        """Tier 1: re-satisfy exactly the currently-unsatisfied edges.

        Purchases only ever add two-paths, so one pass over the damage
        list (in the verifier's deterministic order) ends valid.
        """
        for u, v in self.verifier.unsatisfied():
            self._patch_edge(u, v)

    def _region_rebuild(self) -> None:
        """Tier 2: drop and re-stream the spanner inside the damage region.

        The region is the damaged endpoints plus their 1-hop host
        neighbourhoods (collected in deterministic order). Edges crossing
        the region boundary can lose midpoints when in-region spanner
        edges are dropped; the closing :meth:`_patch` pass re-satisfies
        those.
        """
        host = self.host
        region: Dict[Vertex, None] = {}
        for u, v in self.verifier.unsatisfied():
            region.setdefault(u)
            region.setdefault(v)
        for seed_vertex in list(region):
            nbrs = (
                host.successors(seed_vertex)
                if host.directed
                else host.neighbors(seed_vertex)
            )
            for z in nbrs:
                region.setdefault(z)
        in_region = [
            (u, v)
            for u, v, _w in self.spanner.edges()
            if u in region and v in region
        ]
        for u, v in in_region:
            self._drop_spanner_edge(u, v)
        need = self._need
        verifier = self.verifier
        for u, v, _w in host.edges():
            if u not in region or v not in region:
                continue
            if not verifier.has_edge(u, v) and verifier.count_two_paths(u, v) < need:
                self._buy(u, v)
        if not verifier.is_valid():
            self._patch()

    def _full_rebuild(self) -> None:
        """Tier 3: from-scratch build of the spec's algorithm."""
        self.health = ServiceHealth.REBUILDING
        report = self.session.build(self.spec, graph=self.host)
        spanner = report.spanner
        assert spanner is not None  # checked at construction time
        self.spanner = spanner
        self.verifier = IncrementalFT2Verifier(self.host, self.r, spanner)

    def repair(self, tier: Optional[str] = None) -> Optional[str]:
        """Run one repair, choosing the tier from current damage.

        Returns the tier that ran, or ``None`` when the spanner was
        already valid (explicit ``tier`` forces a run regardless).
        """
        if tier is None:
            if self.is_valid():
                self.health = ServiceHealth.HEALTHY
                return None
            tier = self.policy.tier_for(self.damage_fraction)
        if tier not in TIERS:
            raise InvalidSpec(f"repair tier must be one of {TIERS}, got {tier!r}")
        if tier == "patch":
            self._patch()
        elif tier == "region":
            self._region_rebuild()
        else:
            self._full_rebuild()
        self.stats.tiers[tier] += 1
        self.health = (
            ServiceHealth.HEALTHY if self.is_valid() else ServiceHealth.DEGRADED
        )
        return tier

    # -- operations ----------------------------------------------------

    def _apply_mutation(self, op: Operation) -> bool:
        host, spanner, verifier = self.host, self.spanner, self.verifier
        kind = op.type
        if kind == ADD_NODE:
            v = op.param("v")
            if host.has_vertex(v):
                return False
            host.add_vertex(v)
            spanner.add_vertex(v)
            verifier.add_host_vertex(v)
            return True
        if kind == ADD_EDGE:
            u, v = op.param("u"), op.param("v")
            if u == v or host.has_edge(u, v):
                return False
            weight = float(op.params.get("weight", 1.0))
            host.add_edge(u, v, weight)
            spanner.add_vertex(u)
            spanner.add_vertex(v)
            verifier.add_host_edge(u, v)
            return True
        if kind == DEL_EDGE:
            u, v = op.param("u"), op.param("v")
            if not host.has_edge(u, v):
                return False
            if spanner.has_edge(u, v):
                spanner.remove_edge(u, v)
            verifier.remove_host_edge(u, v)
            host.remove_edge(u, v)
            return True
        # DEL_NODE
        v = op.param("v")
        if not host.has_vertex(v):
            return False
        verifier.remove_host_vertex(v)
        host.remove_vertex(v)
        if spanner.has_vertex(v):
            spanner.remove_vertex(v)
        return True

    def _answer(self, op: Operation) -> Tuple[bool, Any]:
        spanner = self.spanner
        if op.type == QUERY_DIST:
            u, v = op.param("u"), op.param("v")
            if not spanner.has_vertex(u) or not spanner.has_vertex(v):
                return False, None
            if spanner.num_vertices >= MIN_DISPATCH_VERTICES:
                # Targeted dijkstra only rides an *already-built* CSR
                # snapshot; warming it here is amortized by the version
                # cache across every read until the spanner next mutates.
                csr_snapshot(spanner)
            dist = dijkstra(spanner, u, target=v).get(v)
            if dist is None or math.isinf(dist):
                return True, None
            return True, dist
        # READ_NBRS
        v = op.param("v")
        if not spanner.has_vertex(v):
            return False, None
        nbrs = spanner.successors(v) if spanner.directed else spanner.neighbors(v)
        return True, list(nbrs)

    def apply(self, op: Operation) -> OpResult:
        """Apply one operation; mutations trigger the repair policy.

        The invariant: a read answered while the spanner is invalid
        always carries ``health="degraded"`` (and is counted in
        ``stats.degraded_answers``) — the service degrades gracefully,
        never silently.
        """
        index = self._ops_applied
        self._ops_applied += 1
        self.stats.ops[op.type] = self.stats.ops.get(op.type, 0) + 1
        tier: Optional[str] = None
        value: Any = None
        if op.is_mutation:
            ok = self._apply_mutation(op)
            if not ok:
                self.stats.skipped += 1
            else:
                # The host's cached CSR arrays (if some global query built
                # them) can never be valid again; release them eagerly.
                invalidate_snapshot(self.host)
                if self.policy.always_full:
                    tier = self.repair(tier="full")
                elif not self.is_valid():
                    if self.policy.eager:
                        tier = self.repair()
                    else:
                        self.health = ServiceHealth.DEGRADED
        else:
            if not self.is_valid():
                self.health = ServiceHealth.DEGRADED
                self.stats.degraded_answers += 1
            else:
                self.health = ServiceHealth.HEALTHY
            ok, value = self._answer(op)
            if not ok:
                self.stats.skipped += 1
        return OpResult(
            index=index,
            type=op.type,
            ok=ok,
            health=self.health,
            value=value,
            tier=tier,
            damage=self.damage,
        )

    def apply_all(self, ops: Sequence[Operation]) -> List[OpResult]:
        """Apply a whole stream in order."""
        return [self.apply(op) for op in ops]


__all__ = [
    "OpResult",
    "RepairPolicy",
    "ServiceHealth",
    "ServiceStats",
    "SpannerService",
    "TIERS",
    "spanner_digest",
]
