"""``ft2-stream``: the linear greedy FT 2-spanner behind the service.

The existing combinatorial baseline
(:func:`repro.two_spanner.combinatorial.greedy_ft2_spanner`) re-scores
every candidate move per iteration — fine for LP-sized instances,
hopeless as the rebuild tier of a service at n = 10^4. This module adds
the streaming variant: walk the host edges **once** in deterministic
``edges()`` order and buy an edge iff Lemma 3.1 is not already satisfied
for it at that moment.

Correctness is monotonicity: :class:`repro.core.verify.IncrementalFT2Verifier`
counts only grow while edges are added, so an edge skipped because it had
``r + 1`` two-paths (or was already bought as a hop of an earlier path)
stays satisfied, and the single pass ends Lemma 3.1-valid. Total cost is
O(m · Δ) — each purchase is one O(Δ) verifier update — with no LP, no
re-scoring, and no randomness: the output is a pure function of the host
edge order, which is what the serve CI's cross-``PYTHONHASHSEED``
byte-identity check leans on.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from ..core.verify import IncrementalFT2Verifier
from ..errors import FaultToleranceError
from ..graph.graph import BaseGraph
from ..registry import register_algorithm
from ..spec import SpannerSpec, require_stretch

Artifact = Tuple[BaseGraph, Dict[str, Any]]


def stream_ft2_spanner(graph: BaseGraph, r: int) -> BaseGraph:
    """One-pass greedy r-fault-tolerant 2-spanner of ``graph``.

    Deterministic (host edge order only), always Lemma 3.1-valid, and
    linear in the number of host edges times Δ.
    """
    if r < 0:
        raise FaultToleranceError(f"r must be nonnegative, got {r}")
    verifier = IncrementalFT2Verifier(graph, r)
    need = r + 1
    bought = []
    for u, v, _w in graph.edges():
        if not verifier.has_edge(u, v) and verifier.count_two_paths(u, v) < need:
            verifier.add_edge(u, v)
            bought.append((u, v))
    return graph.edge_subgraph(bought)


@register_algorithm(
    "ft2-stream",
    summary=(
        "One-pass streaming greedy for r-fault-tolerant 2-spanners; the "
        "rebuild tier of the serving layer"
    ),
    stretch_domain="exactly 2 (Lemma 3.1 demand structure)",
    weighted=True,
    directed=True,
    fault_tolerant=True,
    fault_kinds=("none", "vertex", "edge"),
    stretch_kind="fixed",
    fixed_stretch=2.0,
)
def _build_ft2_stream(graph: BaseGraph, spec: SpannerSpec, seed) -> Artifact:
    """Registry adapter for :func:`stream_ft2_spanner` (stretch fixed at 2)."""
    require_stretch(spec, 2)
    spanner = stream_ft2_spanner(graph, spec.faults.r)
    stats = {
        "host_edges": graph.num_edges,
        "spanner_edges": spanner.num_edges,
    }
    return spanner, stats


__all__ = ["stream_ft2_spanner"]
