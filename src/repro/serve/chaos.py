"""Seeded fault injection for the spanner service.

:class:`ChaosInjector` turns "the network just lost a rack" into a burst
of :mod:`repro.serve.workload` deletion operations, in two flavours:

* **random** — edges/nodes sampled uniformly from the live host;
* **adversarial** — deletions preferentially hit host edges that are
  *currently in the spanner* ("cut the backbone first"), the worst case
  for a maintained structure: every such deletion is guaranteed damage,
  where a random deletion often lands on an edge the spanner never kept.

All sampling is seeded and iterates the host/spanner graphs in their
deterministic insertion order — never a set — so a chaos campaign is
replayable byte-for-byte across processes and hash seeds.
"""

from __future__ import annotations

from typing import List, Optional

from ..graph.graph import BaseGraph
from ..rng import RandomLike, ensure_rng
from .workload import DEL_EDGE, DEL_NODE, Operation


class ChaosInjector:
    """Generate seeded deletion bursts against a live host graph.

    Parameters
    ----------
    seed:
        RNG seed for target selection.
    adversarial:
        When true, edge bursts target spanner edges first and node bursts
        target the highest-spanner-degree vertices first.
    """

    def __init__(self, seed: RandomLike = None, adversarial: bool = False):
        self._rng = ensure_rng(seed)
        self.adversarial = adversarial

    def edge_burst(
        self,
        host: BaseGraph,
        count: int,
        spanner: Optional[BaseGraph] = None,
    ) -> List[Operation]:
        """``count`` ``DEL_EDGE`` operations against distinct live edges.

        In adversarial mode (``spanner`` given), spanner edges are
        sampled first; the remainder, if any, comes from the other host
        edges. Fewer than ``count`` ops are returned when the host runs
        out of edges.
        """
        rng = self._rng
        edges = [(u, v) for u, v, _w in host.edges()]
        if self.adversarial and spanner is not None:
            primary = [e for e in edges if spanner.has_edge(*e)]
            rest = [e for e in edges if not spanner.has_edge(*e)]
            chosen = self._sample(primary, count, rng)
            if len(chosen) < count:
                chosen += self._sample(rest, count - len(chosen), rng)
        else:
            chosen = self._sample(edges, count, rng)
        return [Operation(DEL_EDGE, {"u": u, "v": v}) for u, v in chosen]

    def node_burst(
        self,
        host: BaseGraph,
        count: int,
        spanner: Optional[BaseGraph] = None,
    ) -> List[Operation]:
        """``count`` ``DEL_NODE`` operations against distinct live nodes.

        Adversarial mode kills the busiest spanner vertices (highest
        spanner degree, ties broken by host insertion order) — each one
        takes every two-path through it down with it.
        """
        rng = self._rng
        nodes = list(host.vertices())
        if self.adversarial and spanner is not None:
            degree = {
                v: (spanner.out_degree(v) if spanner.directed else spanner.degree(v))
                for v in nodes
                if spanner.has_vertex(v)
            }
            ranked = sorted(
                range(len(nodes)),
                key=lambda i: (-degree.get(nodes[i], 0), i),
            )
            chosen = [nodes[i] for i in ranked[:count]]
        else:
            chosen = self._sample(nodes, count, rng)
        return [Operation(DEL_NODE, {"v": v}) for v in chosen]

    @staticmethod
    def _sample(pool: list, count: int, rng) -> list:
        count = min(count, len(pool))
        if count <= 0:
            return []
        return rng.sample(pool, count)


__all__ = ["ChaosInjector"]
