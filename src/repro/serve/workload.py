"""Seeded operation streams for the spanner service.

The operation vocabulary follows the WorkloadGenerator pattern of the
graph-database benchmark suites (see SNIPPETS.md snippet 3): a workload
is a flat list of ``{"type": ..., "params": {...}}`` records, generated
from a seed against a *mirror* of the live graph so that every emitted
mutation is applicable when replayed in order — a ``DEL_EDGE`` always
names an edge that exists at that point of the stream, an ``ADD_EDGE``
never duplicates one, and queries only touch live vertices.

Workloads round-trip through JSON (:func:`save_workload` /
:func:`load_workload`) so the CLI's ``repro serve`` can replay a trace
byte-identically across processes and ``PYTHONHASHSEED`` values: the
generator keeps its live-vertex and live-edge pools as lists (swap-remove
for O(1) deletion) and never iterates a set, so a seed fully determines
the stream.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Mapping, Optional, Sequence

from ..errors import InvalidSpec
from ..graph.graph import BaseGraph
from ..rng import RandomLike, ensure_rng

Vertex = Hashable

#: The operation vocabulary, in canonical order.
ADD_NODE = "ADD_NODE"
ADD_EDGE = "ADD_EDGE"
DEL_EDGE = "DEL_EDGE"
DEL_NODE = "DEL_NODE"
QUERY_DIST = "QUERY_DIST"
READ_NBRS = "READ_NBRS"

OP_TYPES = (ADD_NODE, ADD_EDGE, DEL_EDGE, DEL_NODE, QUERY_DIST, READ_NBRS)

#: Mutating operation types (everything the repair policy reacts to).
MUTATIONS = (ADD_NODE, ADD_EDGE, DEL_EDGE, DEL_NODE)

#: Read-only operation types.
READS = (QUERY_DIST, READ_NBRS)

#: Format tag stamped into serialized workload documents.
WORKLOAD_FORMAT = "repro-workload"
WORKLOAD_VERSION = 1


@dataclass(frozen=True)
class Operation:
    """One stream element: an operation type plus its parameters."""

    type: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.type not in OP_TYPES:
            raise InvalidSpec(
                f"operation type must be one of {OP_TYPES}, got {self.type!r}"
            )

    @property
    def is_mutation(self) -> bool:
        return self.type in MUTATIONS

    def param(self, key: str) -> Any:
        try:
            return self.params[key]
        except KeyError:
            raise InvalidSpec(
                f"{self.type} operation is missing required param {key!r}"
            ) from None

    def to_dict(self) -> Dict[str, Any]:
        return {"type": self.type, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Operation":
        if not isinstance(data, Mapping) or "type" not in data:
            raise InvalidSpec(f"not an operation document: {data!r}")
        extra = set(data) - {"type", "params"}
        if extra:
            raise InvalidSpec(
                f"operation document has unknown keys {sorted(extra)}"
            )
        return cls(type=data["type"], params=dict(data.get("params", {})))


def read_write_weights(read_ratio: float) -> Dict[str, float]:
    """Mixed-workload weights for a given read fraction.

    Reads split evenly between ``QUERY_DIST`` and ``READ_NBRS``; writes
    split 40/30/20/10 across ``ADD_EDGE`` / ``DEL_EDGE`` / ``ADD_NODE`` /
    ``DEL_NODE`` — edge churn dominates, matching the benchmark suites'
    default mixes.
    """
    if not 0.0 <= read_ratio <= 1.0:
        raise InvalidSpec(f"read_ratio must be in [0, 1], got {read_ratio!r}")
    write = 1.0 - read_ratio
    return {
        QUERY_DIST: read_ratio / 2,
        READ_NBRS: read_ratio / 2,
        ADD_EDGE: write * 0.4,
        DEL_EDGE: write * 0.3,
        ADD_NODE: write * 0.2,
        DEL_NODE: write * 0.1,
    }


class _Pool:
    """A list-backed pool with O(1) seeded sampling and swap-removal.

    The pool never iterates a set, so its behaviour is a pure function of
    the insertion/removal sequence and the RNG — the property the whole
    workload layer's cross-process byte-identity rests on.
    """

    def __init__(self, items: Sequence[Any] = ()):  # noqa: D401
        self._items: List[Any] = list(items)
        self._index: Dict[Any, int] = {x: i for i, x in enumerate(self._items)}

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: Any) -> bool:
        return item in self._index

    def add(self, item: Any) -> None:
        if item in self._index:
            return
        self._index[item] = len(self._items)
        self._items.append(item)

    def remove(self, item: Any) -> None:
        pos = self._index.pop(item)
        last = self._items.pop()
        if last != item:
            self._items[pos] = last
            self._index[last] = pos

    def choice(self, rng) -> Any:
        return self._items[rng.randrange(len(self._items))]


class WorkloadGenerator:
    """Emit a seeded, always-applicable operation stream for a host graph.

    Parameters
    ----------
    graph:
        The initial host. Only its vertex/edge *names* are read (into the
        generator's mirror); the graph itself is not mutated.
    seed:
        Stream seed; the same seed and initial host give the same ops.
    weights:
        Mapping from op type to relative weight (missing types get 0).
        Defaults to :func:`read_write_weights` at a 90/10 read mix.
    """

    def __init__(
        self,
        graph: BaseGraph,
        seed: RandomLike = None,
        weights: Optional[Mapping[str, float]] = None,
    ) -> None:
        self._rng = ensure_rng(seed)
        self._directed = graph.directed
        self._nodes = _Pool(list(graph.vertices()))
        self._edges = _Pool(
            [(u, v) for u, v, _w in graph.edges()]
        )
        self._edge_set = set(self._edges._items)
        self._fresh = 0
        weights = dict(weights) if weights is not None else read_write_weights(0.9)
        unknown = set(weights) - set(OP_TYPES)
        if unknown:
            raise InvalidSpec(
                f"workload weights name unknown op types {sorted(unknown)}"
            )
        self._types = [t for t in OP_TYPES if weights.get(t, 0.0) > 0]
        self._weights = [float(weights[t]) for t in self._types]
        if not self._types:
            raise InvalidSpec("workload weights must enable at least one op type")

    def _has_edge(self, u: Vertex, v: Vertex) -> bool:
        # Undirected edges live in the pool under their first-seen
        # orientation, so membership tests try both.
        if (u, v) in self._edge_set:
            return True
        return not self._directed and (v, u) in self._edge_set

    def _fresh_node(self) -> Vertex:
        while True:
            name = f"n{self._fresh}"
            self._fresh += 1
            if name not in self._nodes:
                return name

    # -- op emission ---------------------------------------------------

    def _emit(self, kind: str) -> Optional[Operation]:
        rng = self._rng
        if kind == ADD_NODE:
            v = self._fresh_node()
            self._nodes.add(v)
            return Operation(ADD_NODE, {"v": v})
        if kind == ADD_EDGE:
            if len(self._nodes) < 2:
                return None
            for _ in range(8):
                u = self._nodes.choice(rng)
                v = self._nodes.choice(rng)
                if u != v and not self._has_edge(u, v):
                    self._edges.add((u, v))
                    self._edge_set.add((u, v))
                    return Operation(ADD_EDGE, {"u": u, "v": v, "weight": 1.0})
            return None
        if kind == DEL_EDGE:
            if not len(self._edges):
                return None
            u, v = self._edges.choice(rng)
            self._edges.remove((u, v))
            self._edge_set.discard((u, v))
            return Operation(DEL_EDGE, {"u": u, "v": v})
        if kind == DEL_NODE:
            if len(self._nodes) <= 2:
                return None
            v = self._nodes.choice(rng)
            self._nodes.remove(v)
            # Drop incident edges from the mirror (replay removes them on
            # the host implicitly via remove_vertex).
            incident = [
                (a, b) for a, b in self._edges._items if a == v or b == v
            ]
            for pair in incident:
                self._edges.remove(pair)
                self._edge_set.discard(pair)
            return Operation(DEL_NODE, {"v": v})
        if kind == QUERY_DIST:
            if len(self._nodes) < 2:
                return None
            u = self._nodes.choice(rng)
            v = self._nodes.choice(rng)
            if u == v:
                return None
            return Operation(QUERY_DIST, {"u": u, "v": v})
        # READ_NBRS
        if not len(self._nodes):
            return None
        return Operation(READ_NBRS, {"v": self._nodes.choice(rng)})

    def generate(self, num_ops: int) -> List[Operation]:
        """The next ``num_ops`` operations of the stream.

        An op kind drawn against an empty pool (e.g. ``DEL_EDGE`` with no
        live edges) falls back to ``ADD_EDGE`` and then ``ADD_NODE``, so
        the stream always has exactly ``num_ops`` elements.
        """
        ops: List[Operation] = []
        while len(ops) < num_ops:
            kind = self._rng.choices(self._types, weights=self._weights)[0]
            op = self._emit(kind)
            if op is None:
                op = self._emit(ADD_EDGE) or self._emit(ADD_NODE)
            if op is not None:
                ops.append(op)
        return ops


def apply_mutations(graph: BaseGraph, ops: Sequence[Operation]) -> BaseGraph:
    """Replay a stream's mutations onto ``graph`` (reads are ignored).

    This is the *unserviced* replay: no spanner, no repair — just the
    host-graph evolution. The acceptance checks use it to reconstruct
    the final host independently of the service and compare a
    from-scratch build against the maintained spanner. Inapplicable
    mutations (the stream was generated against a different host state)
    are skipped, matching the service's behaviour. Returns ``graph``.
    """
    for op in ops:
        kind = op.type
        if kind == ADD_NODE:
            graph.add_vertex(op.param("v"))
        elif kind == ADD_EDGE:
            u, v = op.param("u"), op.param("v")
            if u != v and not graph.has_edge(u, v):
                graph.add_edge(u, v, float(op.params.get("weight", 1.0)))
        elif kind == DEL_EDGE:
            u, v = op.param("u"), op.param("v")
            if graph.has_edge(u, v):
                graph.remove_edge(u, v)
        elif kind == DEL_NODE:
            v = op.param("v")
            if graph.has_vertex(v):
                graph.remove_vertex(v)
    return graph


# -- serialization -----------------------------------------------------


def workload_to_dict(ops: Sequence[Operation]) -> Dict[str, Any]:
    """JSON-able workload document."""
    return {
        "format": WORKLOAD_FORMAT,
        "version": WORKLOAD_VERSION,
        "num_ops": len(ops),
        "ops": [op.to_dict() for op in ops],
    }


def workload_from_dict(data: Mapping[str, Any]) -> List[Operation]:
    """Inverse of :func:`workload_to_dict`; strict about shape."""
    if not isinstance(data, Mapping) or data.get("format") != WORKLOAD_FORMAT:
        raise InvalidSpec(
            f"not a workload document: format={data.get('format') if isinstance(data, Mapping) else data!r}"
        )
    version = data.get("version", WORKLOAD_VERSION)
    if version != WORKLOAD_VERSION:
        raise InvalidSpec(
            f"unsupported workload version {version!r} (this library reads "
            f"version {WORKLOAD_VERSION})"
        )
    return [Operation.from_dict(op) for op in data.get("ops", [])]


def save_workload(ops: Sequence[Operation], path: str) -> None:
    """Write a workload trace as canonical JSON (sorted keys)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(workload_to_dict(ops), handle, sort_keys=True, indent=2)
        handle.write("\n")


def load_workload(path: str) -> List[Operation]:
    """Read a workload trace written by :func:`save_workload`."""
    with open(path, "r", encoding="utf-8") as handle:
        return workload_from_dict(json.load(handle))


__all__ = [
    "ADD_EDGE",
    "ADD_NODE",
    "DEL_EDGE",
    "DEL_NODE",
    "MUTATIONS",
    "OP_TYPES",
    "Operation",
    "QUERY_DIST",
    "READS",
    "READ_NBRS",
    "WorkloadGenerator",
    "apply_mutations",
    "load_workload",
    "read_write_weights",
    "save_workload",
    "workload_from_dict",
    "workload_to_dict",
]
