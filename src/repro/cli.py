"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate`` — create a workload graph and write it as JSON;
* ``ft-spanner`` — build an r-fault-tolerant k-spanner (Theorem 2.1
  conversion) of a JSON graph, optionally verify and export it;
* ``ft2-approx`` — run the Theorem 3.3 O(log n)-approximation for Minimum
  Cost r-Fault Tolerant 2-Spanner on a JSON digraph;
* ``verify`` — check a spanner file against a host file for a given
  ``(k, r)``, with exhaustive / sampled / Lemma 3.1 modes.

Every command is deterministic under ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import render_table
from .core import (
    fault_tolerant_spanner,
    is_fault_tolerant_spanner,
    is_ft_2spanner,
    sampled_fault_check,
)
from .errors import ReproError
from .graph import (
    complete_graph,
    connected_gnp_graph,
    dump_json,
    gnp_random_digraph,
    gnp_random_graph,
    grid_graph,
    load_json,
    random_geometric_graph,
    random_regular_graph,
    to_dot,
)
from .two_spanner import approximate_ft2_spanner


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fault-tolerant spanners (Dinitz & Krauthgamer, PODC 2011)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a workload graph (JSON)")
    gen.add_argument(
        "kind",
        choices=["gnp", "gnp-connected", "gnp-digraph", "complete", "grid",
                 "regular", "geometric"],
    )
    gen.add_argument("--n", type=int, default=30, help="vertex count / grid side")
    gen.add_argument("--p", type=float, default=0.3, help="edge probability")
    gen.add_argument("--degree", type=int, default=4, help="regular degree")
    gen.add_argument("--radius", type=float, default=0.3, help="geometric radius")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True, help="output JSON path")

    ft = sub.add_parser("ft-spanner", help="Theorem 2.1 conversion")
    ft.add_argument("graph", help="host graph JSON path")
    ft.add_argument("--k", type=float, default=3.0, help="stretch bound")
    ft.add_argument("--r", type=int, default=1, help="fault tolerance")
    ft.add_argument("--schedule", choices=["theorem", "light"], default="theorem")
    ft.add_argument("--iterations", type=int, default=None)
    ft.add_argument("--seed", type=int, default=0)
    ft.add_argument("--out", default=None, help="write the spanner JSON here")
    ft.add_argument("--dot", default=None, help="write a DOT rendering here")
    ft.add_argument(
        "--verify",
        choices=["none", "exhaustive", "sampled"],
        default="sampled",
    )

    approx = sub.add_parser("ft2-approx", help="Theorem 3.3 approximation")
    approx.add_argument("graph", help="host digraph JSON path")
    approx.add_argument("--r", type=int, default=1)
    approx.add_argument("--seed", type=int, default=0)
    approx.add_argument("--out", default=None, help="write the spanner JSON here")

    ver = sub.add_parser("verify", help="verify a spanner against a host graph")
    ver.add_argument("graph", help="host graph JSON path")
    ver.add_argument("spanner", help="spanner JSON path")
    ver.add_argument("--k", type=float, default=3.0)
    ver.add_argument("--r", type=int, default=1)
    ver.add_argument(
        "--mode", choices=["exhaustive", "sampled", "lemma31"], default="sampled"
    )
    ver.add_argument("--trials", type=int, default=100)
    ver.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_generate(args) -> int:
    if args.kind == "gnp":
        graph = gnp_random_graph(args.n, args.p, seed=args.seed)
    elif args.kind == "gnp-connected":
        graph = connected_gnp_graph(args.n, args.p, seed=args.seed)
    elif args.kind == "gnp-digraph":
        graph = gnp_random_digraph(args.n, args.p, seed=args.seed)
    elif args.kind == "complete":
        graph = complete_graph(args.n)
    elif args.kind == "grid":
        graph = grid_graph(args.n, args.n)
    elif args.kind == "regular":
        graph = random_regular_graph(args.n, args.degree, seed=args.seed)
    else:  # geometric
        graph = random_geometric_graph(args.n, args.radius, seed=args.seed)
    dump_json(graph, args.out)
    print(
        f"wrote {args.kind} graph (n={graph.num_vertices}, "
        f"m={graph.num_edges}) to {args.out}"
    )
    return 0


def _cmd_ft_spanner(args) -> int:
    graph = load_json(args.graph)
    result = fault_tolerant_spanner(
        graph,
        args.k,
        args.r,
        iterations=args.iterations,
        schedule=args.schedule,
        seed=args.seed,
    )
    rows = [
        ["host edges", graph.num_edges],
        ["spanner edges", result.num_edges],
        ["iterations", result.stats.iterations],
        ["max survivor |G\\J|", result.stats.max_survivor_size],
    ]
    if args.verify == "exhaustive":
        ok = is_fault_tolerant_spanner(result.spanner, graph, args.k, args.r)
        rows.append(["exhaustively valid", ok])
    elif args.verify == "sampled":
        ok = sampled_fault_check(
            result.spanner, graph, args.k, args.r, trials=100, seed=args.seed
        )
        rows.append(["sampled-valid (100 trials)", ok])
    else:
        ok = True
    print(render_table(["quantity", "value"],
                       rows, title=f"ft-spanner k={args.k} r={args.r}"))
    if args.out:
        dump_json(result.spanner, args.out)
        print(f"spanner written to {args.out}")
    if args.dot:
        with open(args.dot, "w", encoding="utf-8") as handle:
            handle.write(to_dot(graph, highlight=result.spanner))
        print(f"DOT rendering written to {args.dot}")
    return 0 if ok else 2


def _cmd_ft2_approx(args) -> int:
    graph = load_json(args.graph)
    result = approximate_ft2_spanner(graph, args.r, seed=args.seed)
    valid = is_ft_2spanner(result.spanner, graph, args.r)
    print(
        render_table(
            ["quantity", "value"],
            [
                ["arcs", graph.num_edges],
                ["LP (4) optimum", result.lp_objective],
                ["rounded cost", result.cost],
                ["cost / LP", result.ratio_vs_lp],
                ["alpha", result.alpha],
                ["rounding attempts", result.rounding.attempts],
                ["repaired edges", len(result.rounding.repaired_edges)],
                ["valid (Lemma 3.1)", valid],
            ],
            title=f"ft2-approx r={args.r}",
        )
    )
    if args.out:
        dump_json(result.spanner, args.out)
        print(f"spanner written to {args.out}")
    return 0 if valid else 2


def _cmd_verify(args) -> int:
    graph = load_json(args.graph)
    spanner = load_json(args.spanner)
    if args.mode == "exhaustive":
        ok = is_fault_tolerant_spanner(spanner, graph, args.k, args.r)
    elif args.mode == "sampled":
        ok = sampled_fault_check(
            spanner, graph, args.k, args.r, trials=args.trials, seed=args.seed
        )
    else:
        ok = is_ft_2spanner(spanner, graph, args.r)
    print(f"{args.mode} verification (k={args.k}, r={args.r}): "
          f"{'PASS' if ok else 'FAIL'}")
    return 0 if ok else 2


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "ft-spanner": _cmd_ft_spanner,
        "ft2-approx": _cmd_ft2_approx,
        "verify": _cmd_verify,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
