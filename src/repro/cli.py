"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate`` — create a workload graph and write it as JSON;
* ``ft-spanner`` — build an r-fault-tolerant k-spanner (Theorem 2.1
  conversion) of a JSON graph, optionally verify and export it;
* ``ft2-approx`` — run the Theorem 3.3 O(log n)-approximation for Minimum
  Cost r-Fault Tolerant 2-Spanner on a JSON digraph;
* ``run`` — execute a JSON :class:`repro.spec.SpannerSpec` file (the
  sharded-sweep workhorse: a ``run`` of a spec written by ``--spec-out``
  reproduces the originating invocation byte-for-byte in ``--json`` mode);
* ``sweep`` — the sharded sweep driver (:mod:`repro.sweep`): execute a
  plan JSON across ``--workers`` processes, run one ``--shard i/of``
  (persisting its envelope for a later ``merge``), ``--emit`` a plan
  from a parameter grid (refusing points the registry says an algorithm
  cannot serve), print the ``--coverage`` matrix, drive a fault-tolerant
  ``--scheduler DIR`` work queue (:mod:`repro.sched`: leases,
  heartbeats, crash recovery, resumable across invocations), or report
  a scheduler's ``--status`` including its quarantine ledger;
* ``sweep-worker`` — join a scheduled sweep from any machine sharing
  the scheduler directory, claiming shards until the sweep finishes;
* ``merge`` — recombine persisted shard envelopes (or a whole scheduler
  directory) into the sequential path's report list (byte-identical for
  the same plan and seeds);
* ``workload`` — generate a seeded operation stream (reads + mutations,
  optional chaos bursts) for ``serve`` (:mod:`repro.serve.workload`);
* ``serve`` — replay a workload JSON against a maintained FT 2-spanner
  with the tiered repair policy (:class:`repro.serve.SpannerService`),
  reporting health, repair-tier histogram, and the final spanner digest;
* ``algorithms`` — the registry's capability table
  (:func:`repro.registry.describe_algorithms`);
* ``hosts`` — the host-topology registry (:mod:`repro.hosts`): list
  generator capabilities, describe one generator, ``--emit`` a typed
  :class:`repro.hosts.HostSpec` JSON, or ``--materialize`` the graph
  itself (``sweep --emit --topology`` consumes the same registry);
* ``verify`` — check a spanner file against a host file for a given
  ``(k, r)``, with exhaustive / sampled / Lemma 3.1 modes.

Every subcommand shares one parent parser providing ``--seed``,
``--method`` (the :func:`repro.graph.csr.resolve_method` dispatch
switch), and ``--json`` (machine-readable output on stdout). The build
subcommands are thin :class:`repro.spec.SpannerSpec` constructors over
one :class:`repro.session.Session`; they contain no algorithm plumbing
of their own.

Every command is deterministic under ``--seed``; ``run`` takes its seed
and method from the spec file unless the flags are given explicitly.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import List, Optional

from .analysis import render_table
from .errors import ReproError
from .graph import (
    complete_graph,
    connected_gnp_graph,
    dump_json,
    gnp_random_digraph,
    gnp_random_graph,
    grid_graph,
    load_json,
    random_geometric_graph,
    random_regular_graph,
    to_dot,
)
from .analysis.experiments import merge_shard_reports
from .hosts import (
    HostSpec,
    describe_host_generators,
    get_host_generator,
)
from .registry import describe_algorithms
from .sched import (
    init_scheduler_dir,
    is_scheduler_dir,
    run_scheduled_sweep,
    run_worker,
    scheduler_envelope_paths,
    scheduler_status,
)
from .session import Session
from .spec import BuildReport, FaultModel, SpannerSpec
from .sweep import (
    SweepPlan,
    coverage_matrix,
    emit_grid_plan,
    load_shard_report,
    parse_shard,
    run_shard,
    run_sweep,
    save_shard_report,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fault-tolerant spanners (Dinitz & Krauthgamer, PODC 2011)",
    )
    # One parent parser for the flags every subcommand shares — a single
    # definition instead of per-subcommand duplication. Defaults are None
    # sentinels so handlers can tell "left unset" (fall back to 0/auto,
    # or to the spec file's own values for `run`) from an explicit choice.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--seed", type=int, default=None,
                        help="deterministic seed (default 0)")
    common.add_argument(
        "--method",
        choices=["auto", "csr", "dict", "compiled"],
        default=None,
        help="kernel dispatch: CSR fast path, dict reference, compiled C "
             "backend (errors if it cannot build/load), or auto (default; "
             "picks by size and backend availability)",
    )
    common.add_argument(
        "--json",
        action="store_true",
        help="machine-readable JSON on stdout instead of tables",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser(
        "generate", parents=[common], help="generate a workload graph (JSON)"
    )
    gen.add_argument(
        "kind",
        choices=["gnp", "gnp-connected", "gnp-digraph", "complete", "grid",
                 "regular", "geometric"],
    )
    gen.add_argument("--n", type=int, default=30, help="vertex count / grid side")
    gen.add_argument("--p", type=float, default=0.3, help="edge probability")
    gen.add_argument("--degree", type=int, default=4, help="regular degree")
    gen.add_argument("--radius", type=float, default=0.3, help="geometric radius")
    gen.add_argument("--out", required=True, help="output JSON path")

    ft = sub.add_parser(
        "ft-spanner", parents=[common], help="Theorem 2.1 conversion"
    )
    ft.add_argument("graph", help="host graph JSON path")
    ft.add_argument("--k", type=float, default=3.0, help="stretch bound")
    ft.add_argument("--r", type=int, default=1, help="fault tolerance")
    ft.add_argument("--schedule", choices=["theorem", "light"], default="theorem")
    ft.add_argument("--iterations", type=int, default=None)
    ft.add_argument("--out", default=None, help="write the spanner JSON here")
    ft.add_argument("--dot", default=None, help="write a DOT rendering here")
    ft.add_argument("--spec-out", default=None,
                    help="write the equivalent spec JSON here (for `repro run`)")
    ft.add_argument(
        "--verify",
        choices=["none", "exhaustive", "sampled"],
        default="sampled",
    )

    approx = sub.add_parser(
        "ft2-approx", parents=[common], help="Theorem 3.3 approximation"
    )
    approx.add_argument("graph", help="host digraph JSON path")
    approx.add_argument("--r", type=int, default=1)
    approx.add_argument("--out", default=None, help="write the spanner JSON here")
    approx.add_argument("--spec-out", default=None,
                        help="write the equivalent spec JSON here")

    run = sub.add_parser(
        "run", parents=[common],
        help="execute a JSON spec file (--seed/--method override the spec "
             "when given)",
    )
    run.add_argument("spec", help="SpannerSpec JSON path (see --spec-out)")
    run.add_argument("--out", default=None, help="write the spanner JSON here")
    run.add_argument("--dot", default=None, help="write a DOT rendering here")
    run.add_argument(
        "--verify",
        choices=["none", "exhaustive", "sampled", "lemma31", "auto"],
        default=None,
        help="default: sampled (lemma31 for the stretch-2 pipelines)",
    )

    sweep = sub.add_parser(
        "sweep", parents=[common],
        help="sharded sweep driver: run/emit spec-list plans "
             "(see also `merge`)",
    )
    sweep.add_argument("plan", nargs="?", default=None,
                       help="sweep plan JSON path (see --emit)")
    sweep.add_argument("--workers", type=int, default=1,
                       help="worker processes for a full-plan run")
    sweep.add_argument(
        "--shard", default=None, metavar="i/of",
        help="run only this shard of the plan (persist its envelope with "
             "--reports-dir, then recombine with `repro merge`)",
    )
    sweep.add_argument("--reports-dir", default=None,
                       help="persist one shard-<i>.json envelope per shard here")
    sweep.add_argument("--include-spanner", action="store_true",
                       help="carry spanner edge lists inside the envelopes")
    sweep.add_argument(
        "--emit", default=None, metavar="OUT",
        help="emit a plan over a parameter grid to OUT instead of running "
             "(needs --graph and --algorithms; refuses unsupported points)",
    )
    sweep.add_argument("--graph", action="append", default=None,
                       help="host graph JSON path for --emit (repeatable)")
    sweep.add_argument(
        "--topology", action="append", default=None,
        metavar="NAME[:K=V,...]",
        help="registered host generator for --emit, e.g. "
             "kautz:d=2,diameter=3 (repeatable; randomized generators "
             "take their seed from --seed; unsupported host x algorithm "
             "points are refused or, with --skip-unsupported, recorded "
             "on plan.skipped)",
    )
    sweep.add_argument("--algorithms", default=None,
                       help="comma-separated registry names for --emit")
    sweep.add_argument("--stretch", default="3",
                       help="comma-separated stretch values (default 3)")
    sweep.add_argument("--r", default="1",
                       help="comma-separated fault tolerances; 0 = no faults "
                            "(default 1)")
    sweep.add_argument("--fault-kind", choices=["vertex", "edge"],
                       default="vertex",
                       help="fault model of the r > 0 grid points")
    sweep.add_argument("--seeds", type=int, default=1,
                       help="seeds per grid point (values seed..seed+N-1)")
    sweep.add_argument("--params", default=None,
                       help="JSON object of params applied to every spec")
    sweep.add_argument("--name", default="sweep", help="plan name")
    sweep.add_argument("--skip-unsupported", action="store_true",
                       help="drop unsupported grid points instead of refusing")
    sweep.add_argument("--coverage", action="store_true",
                       help="print the registry's coverage matrix and exit")
    sweep.add_argument(
        "--scheduler", default=None, metavar="DIR",
        help="fault-tolerant work-queue directory (any shared filesystem): "
             "initialize it from the plan (idempotent) and drive it with "
             "--workers local worker processes; more workers can join from "
             "other machines via `repro sweep-worker DIR`. --workers 0 "
             "initializes without running",
    )
    sweep.add_argument(
        "--status", default=None, metavar="DIR",
        help="report a scheduler directory's progress (per-shard states, "
             "retries, quarantine ledger) and exit; 3 when degraded",
    )
    sweep.add_argument(
        "--shards", type=int, default=None,
        help="shard count for --scheduler initialization "
             "(default: a worker-friendly count derived from the plan)",
    )
    sweep.add_argument(
        "--lease-ttl", type=float, default=30.0, metavar="S",
        help="scheduler lease TTL: a worker silent this long is presumed "
             "dead and its shard reclaimed (default 30)",
    )
    sweep.add_argument(
        "--max-attempts", type=int, default=3,
        help="scheduler attempts per shard before quarantine (default 3)",
    )
    sweep.add_argument(
        "--shard-timeout", type=float, default=None, metavar="S",
        help="kill any shard running longer than this many wall-clock "
             "seconds and retry it once (also REPRO_SWEEP_SHARD_TIMEOUT_S)",
    )

    sweep_worker = sub.add_parser(
        "sweep-worker", parents=[common],
        help="join a scheduled sweep: claim shards from a scheduler "
             "directory until the sweep completes",
    )
    sweep_worker.add_argument(
        "scheduler", help="scheduler directory (see `sweep --scheduler`)"
    )
    sweep_worker.add_argument("--worker-id", default=None,
                              help="stable worker identity (default: "
                                   "host-pid-nonce)")
    sweep_worker.add_argument("--max-shards", type=int, default=None,
                              help="claim at most this many shards, then exit")
    sweep_worker.add_argument("--poll", type=float, default=None, metavar="S",
                              help="idle poll interval (default: TTL/4)")

    merge = sub.add_parser(
        "merge", parents=[common],
        help="recombine sweep shard envelopes into the sequential report list",
    )
    merge.add_argument(
        "shards", nargs="+",
        help="shard-<i>.json envelope files, reports directories, and/or "
             "scheduler directories (refused while shards are quarantined)",
    )
    merge.add_argument("--out", default=None,
                       help="also write the merged result JSON here")

    wl = sub.add_parser(
        "workload", parents=[common],
        help="generate a seeded operation stream for `repro serve`",
    )
    wl.add_argument("graph", help="initial host graph JSON path")
    wl.add_argument("--ops", type=int, default=500,
                    help="number of stream operations (default 500)")
    wl.add_argument("--read-ratio", type=float, default=0.9,
                    help="fraction of read ops (default 0.9)")
    wl.add_argument("--chaos-edges", type=int, default=0,
                    help="append a DEL_EDGE burst of this size")
    wl.add_argument("--chaos-nodes", type=int, default=0,
                    help="append a DEL_NODE burst of this size")
    wl.add_argument("--adversarial", action="store_true",
                    help="aim chaos bursts at the spanner's own edges")
    wl.add_argument("--r", type=int, default=1,
                    help="tolerance of the spanner adversarial bursts target")
    wl.add_argument("--out", required=True, help="workload JSON output path")

    srv = sub.add_parser(
        "serve", parents=[common],
        help="replay a workload stream against a maintained FT 2-spanner",
    )
    srv.add_argument("graph", help="initial host graph JSON path")
    srv.add_argument("workload", help="workload JSON path (see `workload`)")
    srv.add_argument("--r", type=int, default=1, help="fault tolerance")
    srv.add_argument("--algorithm", default="ft2-stream",
                     help="registered stretch-2 builder for (re)builds")
    srv.add_argument(
        "--policy", choices=["tiered", "lazy", "rebuild-per-op"],
        default="tiered",
        help="tiered eager repair (default), lazy (run degraded between "
             "repairs), or the rebuild-per-mutation baseline",
    )
    srv.add_argument("--patch-threshold", type=float, default=0.02,
                     help="damage fraction up to which the patch tier runs")
    srv.add_argument("--rebuild-threshold", type=float, default=0.10,
                     help="damage fraction above which a full rebuild runs")
    srv.add_argument(
        "--final-rebuild", action="store_true",
        help="finish with a full rebuild (compaction): the final spanner "
             "then equals a from-scratch build on the final host",
    )
    srv.add_argument("--out", default=None,
                     help="write the final spanner JSON here")
    srv.add_argument("--results-out", default=None,
                     help="write the per-op result trace JSON here")

    sub.add_parser(
        "algorithms", parents=[common],
        help="list registered algorithms and their capabilities",
    )

    hosts = sub.add_parser(
        "hosts", parents=[common],
        help="list host-topology generators, or emit/materialize one",
    )
    hosts.add_argument(
        "name", nargs="?", default=None,
        help="generator to describe/emit/materialize (omit to list all)",
    )
    hosts.add_argument(
        "--param", action="append", default=None, metavar="KEY=VALUE",
        help="generator parameter (repeatable; VALUE parsed as JSON, "
             "falling back to a plain string)",
    )
    hosts.add_argument(
        "--emit", default=None, metavar="OUT",
        help="write the HostSpec JSON here (consumable by SpannerSpec "
             "graph bindings and sweep plans)",
    )
    hosts.add_argument(
        "--materialize", default=None, metavar="OUT",
        help="build the graph and write its JSON here",
    )

    ver = sub.add_parser(
        "verify", parents=[common], help="verify a spanner against a host graph"
    )
    ver.add_argument("graph", help="host graph JSON path")
    ver.add_argument("spanner", help="spanner JSON path")
    ver.add_argument("--k", type=float, default=3.0)
    ver.add_argument("--r", type=int, default=1)
    ver.add_argument(
        "--mode", choices=["exhaustive", "sampled", "lemma31"], default="sampled"
    )
    ver.add_argument("--trials", type=int, default=100)
    return parser


def _print_json(doc) -> None:
    """Canonical JSON to stdout: sorted keys, so output is byte-stable."""
    print(json.dumps(doc, sort_keys=True, indent=2))


def _seed_of(args) -> int:
    """The effective seed: explicit flag value, else the documented 0."""
    return 0 if args.seed is None else args.seed


def _method_of(args) -> str:
    """The effective method: explicit flag value, else ``auto``."""
    return args.method if args.method is not None else "auto"


def _cmd_generate(args) -> int:
    if args.kind == "gnp":
        graph = gnp_random_graph(args.n, args.p, seed=_seed_of(args))
    elif args.kind == "gnp-connected":
        graph = connected_gnp_graph(args.n, args.p, seed=_seed_of(args))
    elif args.kind == "gnp-digraph":
        graph = gnp_random_digraph(args.n, args.p, seed=_seed_of(args))
    elif args.kind == "complete":
        graph = complete_graph(args.n)
    elif args.kind == "grid":
        graph = grid_graph(args.n, args.n)
    elif args.kind == "regular":
        graph = random_regular_graph(args.n, args.degree, seed=_seed_of(args))
    else:  # geometric
        graph = random_geometric_graph(args.n, args.radius, seed=_seed_of(args))
    dump_json(graph, args.out)
    if args.json:
        _print_json(
            {
                "kind": args.kind,
                "n": graph.num_vertices,
                "m": graph.num_edges,
                "directed": graph.directed,
                "out": args.out,
            }
        )
    else:
        print(
            f"wrote {args.kind} graph (n={graph.num_vertices}, "
            f"m={graph.num_edges}) to {args.out}"
        )
    return 0


def _execute_spec(
    spec: SpannerSpec,
    verify_mode: str,
    json_mode: bool,
    out: Optional[str],
    dot: Optional[str],
    title: str,
    table_rows,
) -> int:
    """Shared build/verify/export driver behind ft-spanner, ft2-approx, run.

    ``table_rows`` maps ``(session, report, host)`` to the human table's
    rows; the JSON document is the same for every entry point, which is
    what makes ``repro run`` reproduce a build subcommand byte-for-byte.
    """
    session = Session()
    report = session.build(spec)
    host = session.resolve_graph(spec)
    verification = None
    ok = True
    if verify_mode != "none":
        # The verification RNG is keyed to the build seed, so a rerun of
        # the same spec (e.g. via `repro run`) samples the same faults.
        ok = session.verify(
            report,
            graph=host,
            mode=verify_mode,
            trials=100,
            seed=report.resolved_seed or 0,
        )
        verification = {"mode": verify_mode, "ok": ok}
    if json_mode:
        doc = report.to_dict(include_spanner=False, include_timing=False)
        doc["verification"] = verification
        _print_json(doc)
    else:
        rows = table_rows(session, report, host)
        if verification is not None:
            label = {
                "exhaustive": "exhaustively valid",
                "sampled": "sampled-valid (100 trials)",
                "lemma31": "valid (Lemma 3.1)",
            }.get(verify_mode, f"{verify_mode}-valid")
            rows.append([label, ok])
        print(render_table(["quantity", "value"], rows, title=title))
    if out:
        dump_json(report.spanner, out)
        if not json_mode:
            print(f"spanner written to {out}")
    if dot:
        with open(dot, "w", encoding="utf-8") as handle:
            handle.write(to_dot(host, highlight=report.spanner))
        if not json_mode:
            print(f"DOT rendering written to {dot}")
    return 0 if ok else 2


def _ft_spanner_spec(args) -> SpannerSpec:
    """Thin spec constructor for the ft-spanner subcommand."""
    params = {"schedule": args.schedule}
    if args.iterations is not None:
        params["iterations"] = args.iterations
    return SpannerSpec(
        algorithm="theorem21",
        stretch=args.k,
        faults=FaultModel.vertex(args.r),
        method=_method_of(args),
        seed=_seed_of(args),
        params=params,
        graph=args.graph,
    )


def _ft_table_rows(session: Session, report: BuildReport, host) -> list:
    return [
        ["host edges", host.num_edges],
        ["spanner edges", report.size],
        ["iterations", report.stats.get("iterations")],
        ["max survivor |G\\J|", report.stats.get("max_survivor_size")],
    ]


def _cmd_ft_spanner(args) -> int:
    spec = _ft_spanner_spec(args)
    if args.spec_out:
        spec.save(args.spec_out)
        if not args.json:
            print(f"spec written to {args.spec_out}")
    return _execute_spec(
        spec,
        verify_mode=args.verify,
        json_mode=args.json,
        out=args.out,
        dot=args.dot,
        title=f"ft-spanner k={args.k} r={args.r}",
        table_rows=_ft_table_rows,
    )


def _ft2_approx_spec(args) -> SpannerSpec:
    """Thin spec constructor for the ft2-approx subcommand."""
    return SpannerSpec(
        algorithm="ft2-approx",
        stretch=2,
        faults=FaultModel.vertex(args.r),
        method=_method_of(args),
        seed=_seed_of(args),
        graph=args.graph,
    )


def _ft2_table_rows(session: Session, report: BuildReport, host) -> list:
    stats = report.stats
    return [
        ["arcs", host.num_edges],
        ["LP (4) optimum", stats.get("lp_objective")],
        ["rounded cost", stats.get("cost")],
        ["cost / LP", stats.get("ratio_vs_lp")],
        ["alpha", stats.get("alpha")],
        ["rounding attempts", stats.get("rounding_attempts")],
        ["repaired edges", stats.get("repaired_edges")],
    ]


def _cmd_ft2_approx(args) -> int:
    spec = _ft2_approx_spec(args)
    if args.spec_out:
        spec.save(args.spec_out)
        if not args.json:
            print(f"spec written to {args.spec_out}")
    return _execute_spec(
        spec,
        verify_mode="lemma31",
        json_mode=args.json,
        out=args.out,
        dot=None,
        title=f"ft2-approx r={args.r}",
        table_rows=_ft2_table_rows,
    )


def _generic_table_rows(session: Session, report: BuildReport, host) -> list:
    rows = [
        ["algorithm", report.spec.algorithm],
        ["host edges", host.num_edges],
        ["size", report.size],
        ["resolved method", report.resolved_method],
    ]
    for key, value in sorted(report.stats.items()):
        if isinstance(value, (int, float, str, bool)):
            rows.append([key, value])
    return rows


def _cmd_run(args) -> int:
    spec = SpannerSpec.load(args.spec)
    # The spec file is authoritative, but an explicit flag overrides it
    # (e.g. one spec fanned out over `--seed $SHARD` for a sweep).
    overrides = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.method is not None:
        overrides["method"] = args.method
    if overrides:
        spec = spec.replace(**overrides)
    table_rows = {
        "theorem21": _ft_table_rows,
        "theorem21-edge": _ft_table_rows,
        "ft2-approx": _ft2_table_rows,
        "dk10-baseline": _ft2_table_rows,
    }.get(spec.algorithm, _generic_table_rows)
    verify_mode = args.verify
    if verify_mode is None:
        # Unset: the stretch-2 pipelines get their natural Lemma 3.1
        # counting check, everything else the sampled default. An
        # explicit choice is always respected.
        verify_mode = (
            "lemma31"
            if spec.algorithm in ("ft2-approx", "dk10-baseline")
            else "sampled"
        )
    return _execute_spec(
        spec,
        verify_mode=verify_mode,
        json_mode=args.json,
        out=args.out,
        dot=args.dot,
        title=f"run {spec.algorithm} "
              f"(stretch={spec.stretch} faults={spec.faults.kind} r={spec.r})",
        table_rows=table_rows,
    )


def _split_csv(text: str, cast, flag: str) -> list:
    """Parse a comma-separated CLI list with an actionable error."""
    kind = "numeric" if cast is _number else cast.__name__
    try:
        values = [cast(part) for part in text.split(",") if part.strip() != ""]
    except ValueError:
        raise ReproError(
            f"{flag} must be a comma-separated list of {kind} "
            f"values, got {text!r}"
        ) from None
    if not values:
        raise ReproError(f"{flag} must name at least one value, got {text!r}")
    return values


def _number(text: str) -> float:
    """Stretch values: ints stay ints (spec JSON identity), else float."""
    value = float(text)
    if value != value or value in (float("inf"), float("-inf")):
        raise ValueError(f"stretch must be finite, got {text!r}")
    return int(value) if value == int(value) else value


def _param_value(text: str):
    """``KEY=VALUE`` values: JSON when it parses, plain string otherwise."""
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def _parse_host_params(entries, flag: str) -> dict:
    """Parse repeatable ``KEY=VALUE`` pairs into a params dict."""
    params = {}
    for entry in entries or ():
        key, sep, value = entry.partition("=")
        if not sep or not key:
            raise ReproError(
                f"{flag} takes KEY=VALUE pairs, got {entry!r}"
            )
        params[key] = _param_value(value)
    return params


def _host_spec_from_grid(text: str, seed_base: int) -> HostSpec:
    """Parse a ``--topology NAME[:K=V,...]`` entry into a HostSpec.

    Randomized generators get ``seed_base`` as their seed (HostSpec
    validation requires one); deterministic generators get none (it
    would change their fingerprint for no reason, and validation
    rejects it).
    """
    name, sep, rest = text.partition(":")
    if not name:
        raise ReproError(f"--topology needs a generator name, got {text!r}")
    params = _parse_host_params(
        [part for part in rest.split(",") if part] if sep else [],
        "--topology",
    )
    info = get_host_generator(name)
    seed = None if info.deterministic else seed_base
    return HostSpec(name, params=params, seed=seed)


def _sweep_result_doc(fingerprint: str, reports) -> dict:
    """The deterministic merged-sweep document.

    Identical whether produced by ``sweep --workers N`` or by ``merge``
    over persisted shard envelopes — the byte-identity the CI smoke step
    diffs. Timing never enters (see ``BuildReport.to_dict``).
    """
    return {
        "format": "repro-sweep-result",
        "version": 1,
        "plan": fingerprint,
        "count": len(reports),
        "reports": [report.to_dict() for report in reports],
    }


def _sweep_rows(reports) -> list:
    return [
        [
            index, r.spec.algorithm, r.spec.stretch, r.spec.faults.kind,
            r.spec.faults.r, r.resolved_seed, r.size, r.resolved_method,
        ]
        for index, r in enumerate(reports)
    ]


_SWEEP_HEADER = ["#", "algorithm", "k", "faults", "r", "seed", "size", "method"]


def _status_rows(status: dict) -> list:
    rows = [["plan", status["plan"]],
            ["shards", status["of"]],
            ["specs", status["plan_size"]]]
    rows += [[state, count] for state, count in sorted(
        status["counts"].items()
    )]
    rows.append(["complete", status["complete"]])
    rows.append(["degraded", status["degraded"]])
    return rows


def _print_scheduler_status(status: dict, json_mode: bool) -> None:
    if json_mode:
        _print_json(status)
        return
    print(render_table(
        ["quantity", "value"], _status_rows(status),
        title=f"scheduler {status['name']}",
    ))
    for shard in status["shards"]:
        if shard["state"] in ("done", "pending"):
            continue
        extra = ""
        if "worker" in shard:
            extra = f" worker={shard['worker']}"
        if "lease_age_s" in shard:
            extra += f" lease_age={shard['lease_age_s']:.1f}s"
        print(
            f"  shard {shard['shard']}: {shard['state']} "
            f"(attempts={shard.get('attempts', 0)}){extra}"
        )
    for entry in status["quarantined"]:
        last = entry["attempts"][-1] if entry["attempts"] else {}
        print(
            f"  quarantined shard {entry['shard']} after "
            f"{len(entry['attempts'])} attempts: "
            f"{last.get('error') or last.get('reason')}"
        )


def _cmd_sweep(args) -> int:
    # Refuse flag combinations that would silently do less than asked.
    if (args.emit or args.coverage) and args.plan is not None:
        raise ReproError(
            "sweep --emit/--coverage do not read a plan argument; drop "
            f"{args.plan!r} (emit writes a new plan from the grid flags)"
        )
    if args.shard is not None and args.workers != 1:
        raise ReproError(
            "--shard runs one shard in this process; --workers does not "
            "apply (run the full plan with --workers, or shards without it)"
        )
    if args.status is not None:
        if args.plan is not None or args.scheduler is not None:
            raise ReproError(
                "sweep --status reads only a scheduler directory; drop the "
                "plan argument / --scheduler"
            )
        status = scheduler_status(args.status)
        _print_scheduler_status(status, args.json)
        return 3 if status["degraded"] else 0
    if args.scheduler is not None and args.shard is not None:
        raise ReproError(
            "--shard and --scheduler are different execution models: the "
            "scheduler assigns shards itself (join it with `repro "
            "sweep-worker` instead)"
        )
    if args.workers < 0 or (args.workers == 0 and args.scheduler is None):
        raise ReproError(
            "--workers must be >= 1 (0 is only meaningful with "
            "--scheduler: initialize without running)"
        )
    if args.coverage:
        rows = coverage_matrix()
        if args.json:
            _print_json({"coverage": rows})
        else:
            columns = [key for key in rows[0] if key != "algorithm"]
            print(render_table(
                ["algorithm", *columns],
                [[row["algorithm"],
                  *[("yes" if row[c] else "-") for c in columns]]
                 for row in rows],
                title="registry coverage matrix (emitter refuses '-' points)",
            ))
        return 0
    if args.emit:
        if not (args.graph or args.topology) or not args.algorithms:
            raise ReproError(
                "sweep --emit needs --algorithms and at least one host: "
                "--graph PATH and/or --topology NAME[:K=V,...]"
            )
        try:
            params = json.loads(args.params) if args.params else None
        except json.JSONDecodeError as exc:
            raise ReproError(f"--params is not valid JSON: {exc}") from None
        topologies = [
            _host_spec_from_grid(entry, _seed_of(args))
            for entry in args.topology or ()
        ]
        plan = emit_grid_plan(
            algorithms=_split_csv(args.algorithms, str, "--algorithms"),
            stretches=_split_csv(args.stretch, _number, "--stretch"),
            rs=_split_csv(args.r, int, "--r"),
            hosts={path: path for path in args.graph} if args.graph else None,
            topologies=topologies or None,
            fault_kind=args.fault_kind,
            seeds=args.seeds,
            seed_base=_seed_of(args),
            method=_method_of(args),
            params=params,
            name=args.name,
            skip_unsupported=args.skip_unsupported,
        )
        plan.save(args.emit)
        if args.json:
            _print_json({
                "plan": plan.fingerprint(),
                "specs": len(plan),
                "hosts": sorted(plan.hosts),
                "skipped": list(plan.skipped),
                "out": args.emit,
            })
        else:
            print(
                f"wrote plan {plan.fingerprint()} ({len(plan)} specs over "
                f"{len(plan.hosts)} hosts) to {args.emit}"
            )
            for entry in plan.skipped:
                print(f"  skipped unsupported point {entry}")
        return 0
    if args.plan is None:
        raise ReproError("sweep needs a plan JSON path (or --emit/--coverage)")
    plan = SweepPlan.load(args.plan).resolve_seeds(_seed_of(args))
    if args.shard is not None:
        index, of = parse_shard(args.shard)
        envelope = run_shard(
            plan.shard(index, of), include_spanner=args.include_spanner
        )
        path = None
        if args.reports_dir is not None:
            path = save_shard_report(envelope, args.reports_dir)
        if args.json:
            _print_json(envelope)
        else:
            where = f" -> {path}" if path else ""
            print(
                f"shard {index}/{of} of plan {envelope['plan']}: "
                f"{len(envelope['reports'])} builds{where}"
            )
        return 0
    if args.scheduler is not None:
        manifest, plan = init_scheduler_dir(
            args.scheduler, plan, of=args.shards, seed=_seed_of(args),
            lease_ttl_s=args.lease_ttl, max_attempts=args.max_attempts,
            shard_timeout_s=args.shard_timeout,
            include_spanner=args.include_spanner,
        )
        if args.workers == 0:
            doc = {
                "scheduler": args.scheduler,
                "plan": manifest.plan_fingerprint,
                "shards": manifest.of,
                "initialized": True,
            }
            if args.json:
                _print_json(doc)
            else:
                print(
                    f"initialized scheduler {args.scheduler}: plan "
                    f"{manifest.plan_fingerprint}, {manifest.of} shards "
                    f"(join with `repro sweep-worker {args.scheduler}`)"
                )
            return 0
        reports, status = run_scheduled_sweep(
            args.scheduler, workers=args.workers
        )
        if reports is None:
            # Degraded: quarantined shards (ledger below) or shards left
            # open. The directory stays resumable — rerun, or join more
            # workers — so this exits distinctly from flag errors.
            _print_scheduler_status(status, args.json)
            return 3
        if args.json:
            _print_json(_sweep_result_doc(manifest.plan_fingerprint, reports))
        else:
            print(render_table(
                _SWEEP_HEADER, _sweep_rows(reports),
                title=f"sweep {plan.name}: {len(reports)} builds, "
                      f"scheduled over {manifest.of} shards",
            ))
        return 0
    reports = run_sweep(
        plan,
        workers=args.workers,
        reports_dir=args.reports_dir,
        include_spanner=args.include_spanner,
        shard_timeout_s=args.shard_timeout,
    )
    if args.json:
        _print_json(_sweep_result_doc(plan.fingerprint(), reports))
    else:
        print(render_table(
            _SWEEP_HEADER, _sweep_rows(reports),
            title=f"sweep {plan.name}: {len(reports)} builds, "
                  f"workers={args.workers}",
        ))
    return 0


def _cmd_sweep_worker(args) -> int:
    summary = run_worker(
        args.scheduler,
        worker_id=args.worker_id,
        max_shards=args.max_shards,
        poll_interval_s=args.poll,
    )
    if args.json:
        _print_json(summary)
    else:
        print(
            f"worker {summary['worker']}: claimed {summary['claimed']} "
            f"shard(s), completed {summary['completed']}, failed "
            f"{summary['failed']}, reclaimed {summary['reclaimed']} "
            f"expired lease(s)"
        )
        counts = ", ".join(
            f"{state}={count}"
            for state, count in sorted(summary["counts"].items()) if count
        )
        print(f"scheduler now: {counts or 'empty'}")
    return 3 if summary["degraded"] else 0


def _cmd_merge(args) -> int:
    paths: List[str] = []
    for entry in args.shards:
        if os.path.isdir(entry):
            if is_scheduler_dir(entry):
                # Full-coverage discipline: raises while any shard is
                # quarantined or unfinished, so a degraded sweep can
                # never silently merge into a "complete" result.
                paths.extend(scheduler_envelope_paths(entry))
                continue
            # Lexicographic order is enough: merge_shard_reports orders
            # reports by their parent-plan indices, not file order.
            found = sorted(glob.glob(os.path.join(entry, "shard-*.json")))
            if not found:
                raise ReproError(f"no shard-*.json envelopes under {entry}")
            paths.extend(found)
        elif not os.path.exists(entry):
            raise ReproError(f"merge input {entry!r} does not exist")
        else:
            paths.append(entry)
    envelopes = [load_shard_report(path) for path in paths]
    reports = merge_shard_reports(envelopes)
    doc = _sweep_result_doc(envelopes[0]["plan"], reports)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(doc, sort_keys=True, indent=2) + "\n")
    if args.json:
        _print_json(doc)
    else:
        print(render_table(
            _SWEEP_HEADER, _sweep_rows(reports),
            title=f"merged {len(envelopes)} shard envelopes: "
                  f"{len(reports)} builds",
        ))
        if args.out:
            print(f"merged result written to {args.out}")
    return 0


def _cmd_workload(args) -> int:
    from .serve import (
        ChaosInjector,
        WorkloadGenerator,
        apply_mutations,
        read_write_weights,
        save_workload,
        stream_ft2_spanner,
    )

    host = load_json(args.graph)
    generator = WorkloadGenerator(
        host, seed=_seed_of(args), weights=read_write_weights(args.read_ratio)
    )
    ops = generator.generate(args.ops)
    chaos_ops = 0
    if args.chaos_edges or args.chaos_nodes:
        # Bursts target the host state the stream leaves behind, so every
        # chaos deletion names a then-live object.
        evolved = apply_mutations(host.copy(), ops)
        spanner = (
            stream_ft2_spanner(evolved, args.r) if args.adversarial else None
        )
        chaos = ChaosInjector(
            seed=_seed_of(args) + 1, adversarial=args.adversarial
        )
        burst = chaos.edge_burst(evolved, args.chaos_edges, spanner=spanner)
        burst += chaos.node_burst(evolved, args.chaos_nodes, spanner=spanner)
        chaos_ops = len(burst)
        ops += burst
    save_workload(ops, args.out)
    reads = sum(1 for op in ops if not op.is_mutation)
    doc = {
        "ops": len(ops),
        "reads": reads,
        "mutations": len(ops) - reads,
        "chaos_ops": chaos_ops,
        "adversarial": bool(args.adversarial),
        "out": args.out,
    }
    if args.json:
        _print_json(doc)
    else:
        print(
            f"wrote {doc['ops']} ops ({doc['reads']} reads, "
            f"{doc['mutations']} mutations, {chaos_ops} chaos) to {args.out}"
        )
    return 0


def _cmd_serve(args) -> int:
    from .serve import (
        RepairPolicy,
        load_workload,
        spanner_digest,
    )

    host = load_json(args.graph)
    ops = load_workload(args.workload)
    if args.policy == "rebuild-per-op":
        policy = RepairPolicy.rebuild_per_mutation()
    elif args.policy == "lazy":
        policy = RepairPolicy.lazy(args.patch_threshold, args.rebuild_threshold)
    else:
        policy = RepairPolicy(args.patch_threshold, args.rebuild_threshold)
    spec = SpannerSpec(
        args.algorithm,
        stretch=2,
        faults=FaultModel.vertex(args.r) if args.r else FaultModel.none(),
        method=_method_of(args),
        seed=_seed_of(args),
    )
    session = Session(seed=_seed_of(args))
    service = session.serve(spec, graph=host, policy=policy)
    results = service.apply_all(ops)
    if args.final_rebuild:
        service.repair(tier="full")
    doc = {
        "format": "repro-serve-result",
        "version": 1,
        "final_rebuild": bool(args.final_rebuild),
        "summary": service.summary(),
        "spanner_digest": spanner_digest(service.spanner),
    }
    if args.results_out:
        with open(args.results_out, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "format": "repro-serve-trace",
                    "version": 1,
                    "results": [r.to_dict() for r in results],
                },
                handle, sort_keys=True, indent=2,
            )
            handle.write("\n")
    if args.out:
        dump_json(service.spanner, args.out)
    if args.json:
        _print_json(doc)
    else:
        summary = doc["summary"]
        print(render_table(
            ["quantity", "value"],
            [
                ["ops applied", summary["ops_applied"]],
                ["health", summary["health"]],
                ["valid (Lemma 3.1)", summary["valid"]],
                ["host edges", summary["host_edges"]],
                ["spanner edges", summary["spanner_edges"]],
                ["patch repairs", summary["stats"]["tiers"]["patch"]],
                ["region repairs", summary["stats"]["tiers"]["region"]],
                ["full rebuilds", summary["stats"]["tiers"]["full"]],
                ["degraded answers", summary["stats"]["degraded_answers"]],
                ["spanner digest", doc["spanner_digest"]],
            ],
            title=f"serve {args.algorithm} r={args.r} policy={args.policy}",
        ))
        if args.out:
            print(f"final spanner written to {args.out}")
        if args.results_out:
            print(f"op trace written to {args.results_out}")
    return 0 if service.is_valid() else 2


def _cmd_algorithms(args) -> int:
    rows = describe_algorithms()
    if args.json:
        _print_json({"algorithms": list(rows)})
        return 0
    flags = ["weighted", "directed", "fault_tolerant", "distributed", "csr_path"]
    print(
        render_table(
            ["name", "stretch domain", *[f.replace("_", " ") for f in flags],
             "summary"],
            [
                [row["name"], row["stretch_domain"],
                 *[("yes" if row[f] else "-") for f in flags], row["summary"]]
                for row in rows
            ],
            title=f"{len(rows)} registered algorithms",
        )
    )
    return 0


def _cmd_hosts(args) -> int:
    if args.name is None:
        if args.param or args.emit or args.materialize:
            raise ReproError(
                "hosts --param/--emit/--materialize need a generator name"
            )
        rows = describe_host_generators()
        if args.json:
            _print_json({"hosts": list(rows)})
            return 0
        flags = ["directed", "weighted", "deterministic"]
        print(render_table(
            ["name", *flags, "params", "summary"],
            [
                [row["name"],
                 *[
                     ("?" if row[f] is None else "yes" if row[f] else "-")
                     for f in flags
                 ],
                 ",".join(row["params"]) or "-", row["summary"]]
                for row in rows
            ],
            title=f"{len(rows)} registered host generators "
                  "(directed '?': depends on the file)",
        ))
        return 0
    info = get_host_generator(args.name)
    # Randomized generators need a seed (HostSpec validation enforces
    # it); deterministic ones must not carry one — an explicit --seed on
    # a deterministic generator falls through to that actionable error.
    seed = args.seed
    if seed is None and not info.deterministic:
        seed = 0
    spec = HostSpec(
        args.name, params=_parse_host_params(args.param, "--param"), seed=seed
    )
    info.validate(spec)
    doc = dict(info.capabilities())
    doc["spec"] = spec.to_dict()
    doc["fingerprint"] = spec.fingerprint()
    if args.materialize:
        graph = spec.materialize()
        dump_json(graph, args.materialize)
        doc["materialized"] = {
            "n": graph.num_vertices,
            "m": graph.num_edges,
            "directed": graph.directed,
            "out": args.materialize,
        }
    if args.emit:
        spec.save(args.emit)
        doc["out"] = args.emit
    if args.json:
        _print_json(doc)
        return 0
    rows = [
        ["summary", info.summary],
        ["directed", "depends on file" if info.directed is None
         else info.directed],
        ["weighted", info.weighted],
        ["deterministic", info.deterministic],
        ["params", ",".join(info.params) or "-"],
        ["required", ",".join(info.required) or "-"],
        ["fingerprint", spec.fingerprint()],
    ]
    if info.max_vertices is not None:
        rows.append(["max vertices", info.max_vertices])
    if "materialized" in doc:
        built = doc["materialized"]
        rows += [["n", built["n"]], ["m", built["m"]]]
    print(render_table(
        ["quantity", "value"], rows, title=f"host generator {args.name}"
    ))
    if args.emit:
        print(f"host spec written to {args.emit}")
    if "materialized" in doc:
        print(f"graph written to {doc['materialized']['out']}")
    return 0


def _cmd_verify(args) -> int:
    graph = load_json(args.graph)
    spanner = load_json(args.spanner)
    from .core import (
        is_fault_tolerant_spanner,
        is_ft_2spanner,
        sampled_fault_check,
    )

    if args.mode == "exhaustive":
        ok = is_fault_tolerant_spanner(spanner, graph, args.k, args.r)
    elif args.mode == "sampled":
        ok = sampled_fault_check(
            spanner, graph, args.k, args.r, trials=args.trials, seed=_seed_of(args)
        )
    else:
        ok = is_ft_2spanner(spanner, graph, args.r)
    if args.json:
        _print_json({"mode": args.mode, "k": args.k, "r": args.r, "ok": ok})
    else:
        print(f"{args.mode} verification (k={args.k}, r={args.r}): "
              f"{'PASS' if ok else 'FAIL'}")
    return 0 if ok else 2


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "ft-spanner": _cmd_ft_spanner,
        "ft2-approx": _cmd_ft2_approx,
        "run": _cmd_run,
        "sweep": _cmd_sweep,
        "sweep-worker": _cmd_sweep_worker,
        "merge": _cmd_merge,
        "workload": _cmd_workload,
        "serve": _cmd_serve,
        "algorithms": _cmd_algorithms,
        "hosts": _cmd_hosts,
        "verify": _cmd_verify,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
