"""Typed fault scenarios: the serializable "what failed" half of a view.

Every per-survivor loop in the library — the Theorem 2.1 oversampling
conversion, its edge-fault variant, the Corollary 2.4 LOCAL pipeline, and
the CLPR09 union-over-fault-sets baseline — used to carry its fault set as
an ad-hoc ``alive`` / ``faults`` / ``survivors`` parameter. This module
makes the fault set a first-class frozen value:

* :class:`FaultScenario` — one concrete failure event: the kind
  (``none`` / ``vertex`` / ``edge``), the failed vertices or edges, and
  optional seed/iteration provenance recording *which* RNG draw of a
  sampling loop produced it;
* :func:`scenario_fault_sets` / :func:`scenario_edge_fault_sets` — the
  normalizers the verifier entry points use so callers may pass either
  raw fault tuples or typed scenarios.

Scenarios round-trip strictly through ``to_dict`` / ``from_dict`` (and
``to_json`` / ``from_json``) exactly like :class:`repro.spec.SpannerSpec`
and :class:`repro.hosts.HostSpec`: a format tag, a version, and rejection
of unknown keys — so a sweep can persist the exact fault draw that broke
a build and replay it anywhere.

The executable twin of a scenario is
:meth:`repro.graph.csr.CSRGraph.survivor_view`, which accepts a scenario
directly and returns the masked zero-copy
:class:`repro.graph.csr.SurvivorView` the kernels run on.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from ..errors import InvalidSpec

#: Accepted values of the scenario ``kind`` field (mirrors
#: ``repro.spec.FAULT_KINDS``).
SCENARIO_KINDS = ("none", "vertex", "edge")

#: Format tag stamped into serialized scenario documents.
SCENARIO_FORMAT = "repro-fault-scenario"
SCENARIO_VERSION = 1


def _require_opt_int(name: str, value: Any, minimum: Optional[int] = None):
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise InvalidSpec(f"{name} must be an int or None, got {value!r}")
    if minimum is not None and value < minimum:
        raise InvalidSpec(f"{name} must be >= {minimum}, got {value}")
    return value


@dataclass(frozen=True)
class FaultScenario:
    """One concrete failure event ``J`` (the paper's ``G \\ J`` fault set).

    Parameters
    ----------
    kind:
        ``"none"`` (nothing failed), ``"vertex"`` (the paper's model:
        ``vertices`` lists the failed vertices), or ``"edge"``
        (``edges`` lists the cut links as ``(u, v)`` pairs).
    vertices:
        The failed vertices (``kind="vertex"`` only). May be empty — an
        empty vertex scenario is a sampled iteration where every vertex
        happened to survive.
    edges:
        The failed edges as 2-tuples (``kind="edge"`` only). Pair
        orientation is irrelevant on undirected hosts.
    seed / iteration:
        Optional provenance: the sampling seed and loop index whose RNG
        draw produced this scenario (see :meth:`sample_vertices` and
        :meth:`repro.session.Session.scenario`). Recorded for replay,
        not consulted by any kernel.
    """

    kind: str = "none"
    vertices: Tuple = ()
    edges: Tuple = ()
    seed: Optional[int] = None
    iteration: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in SCENARIO_KINDS:
            raise InvalidSpec(
                f"scenario kind must be one of {SCENARIO_KINDS}, got {self.kind!r}"
            )
        object.__setattr__(self, "vertices", tuple(self.vertices))
        edges = []
        for pair in self.edges:
            pair = tuple(pair)
            if len(pair) != 2:
                raise InvalidSpec(
                    f"scenario edges must be (u, v) pairs, got {pair!r}"
                )
            edges.append(pair)
        object.__setattr__(self, "edges", tuple(edges))
        if self.kind != "vertex" and self.vertices:
            raise InvalidSpec(
                f"scenario kind={self.kind!r} cannot carry failed vertices; "
                "use FaultScenario.vertex(...)"
            )
        if self.kind != "edge" and self.edges:
            raise InvalidSpec(
                f"scenario kind={self.kind!r} cannot carry failed edges; "
                "use FaultScenario.edge(...)"
            )
        _require_opt_int("scenario seed", self.seed)
        _require_opt_int("scenario iteration", self.iteration, minimum=0)

    # -- constructors --------------------------------------------------

    @classmethod
    def none(cls) -> "FaultScenario":
        """The null scenario: every vertex and edge survives."""
        return cls("none")

    @classmethod
    def vertex(
        cls, faults: Iterable, *, seed: Optional[int] = None,
        iteration: Optional[int] = None,
    ) -> "FaultScenario":
        """Failed-vertex scenario (the paper's fault model)."""
        return cls("vertex", vertices=tuple(faults), seed=seed,
                   iteration=iteration)

    @classmethod
    def edge(
        cls, faults: Iterable, *, seed: Optional[int] = None,
        iteration: Optional[int] = None,
    ) -> "FaultScenario":
        """Failed-edge scenario (Theorem 2.3's sampling model)."""
        return cls("edge", edges=tuple(faults), seed=seed,
                   iteration=iteration)

    @classmethod
    def sample_vertices(
        cls, vertices: Iterable, p_survive: float, rng, *,
        seed: Optional[int] = None, iteration: Optional[int] = None,
    ) -> "FaultScenario":
        """One oversampling draw: each vertex survives with ``p_survive``.

        Consumes exactly one ``rng.random()`` per vertex, in iteration
        order — the same stream the Theorem 2.1 conversion loop draws, so
        a scenario sampled here from iteration ``i``'s derived stream is
        *the* fault set that iteration used.
        """
        faulty = [v for v in vertices if not (rng.random() < p_survive)]
        return cls("vertex", vertices=tuple(faulty), seed=seed,
                   iteration=iteration)

    @classmethod
    def sample_edges(
        cls, edges: Iterable[Tuple], p_survive: float, rng, *,
        seed: Optional[int] = None, iteration: Optional[int] = None,
    ) -> "FaultScenario":
        """One edge-oversampling draw (one ``rng.random()`` per edge)."""
        faulty = [e for e in edges if not (rng.random() < p_survive)]
        return cls("edge", edges=tuple(faulty), seed=seed,
                   iteration=iteration)

    # -- convenience ---------------------------------------------------

    @property
    def is_null(self) -> bool:
        """True when nothing failed (masking is a no-op)."""
        return not self.vertices and not self.edges

    def fault_set(self) -> frozenset:
        """The failed vertices as a frozenset (``kind="vertex"``)."""
        return frozenset(self.vertices)

    def edge_fault_set(self) -> frozenset:
        """The failed edge pairs as given (``kind="edge"``)."""
        return frozenset(self.edges)

    def fingerprint(self) -> str:
        """Stable digest of the scenario document."""
        blob = json.dumps(self.to_dict(), sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()[:16]

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-compatible document (strict inverse of :meth:`from_dict`)."""
        doc: Dict[str, Any] = {
            "format": SCENARIO_FORMAT,
            "version": SCENARIO_VERSION,
            "kind": self.kind,
            "vertices": list(self.vertices),
            "edges": [list(pair) for pair in self.edges],
            "seed": self.seed,
            "iteration": self.iteration,
        }
        try:
            json.dumps(doc)
        except (TypeError, ValueError) as exc:
            raise InvalidSpec(
                "scenario vertices/edges must be JSON-serializable to "
                f"round-trip (got {self.vertices!r} / {self.edges!r})"
            ) from exc
        return doc

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultScenario":
        """Inverse of :meth:`to_dict`; unknown keys and bad tags are rejected."""
        if not isinstance(data, Mapping):
            raise InvalidSpec(f"scenario document must be a mapping, got {data!r}")
        known = {"format", "version", "kind", "vertices", "edges", "seed",
                 "iteration"}
        extra = set(data) - known
        if extra:
            raise InvalidSpec(
                f"scenario document has unknown keys {sorted(extra)}"
            )
        fmt = data.get("format", SCENARIO_FORMAT)
        if fmt != SCENARIO_FORMAT:
            raise InvalidSpec(
                f"scenario document format must be {SCENARIO_FORMAT!r}, "
                f"got {fmt!r}"
            )
        version = data.get("version", SCENARIO_VERSION)
        if version != SCENARIO_VERSION:
            raise InvalidSpec(
                f"scenario document version {version!r} is not supported "
                f"(expected {SCENARIO_VERSION})"
            )
        return cls(
            kind=data.get("kind", "none"),
            vertices=tuple(data.get("vertices", ())),
            edges=tuple(tuple(pair) for pair in data.get("edges", ())),
            seed=data.get("seed"),
            iteration=data.get("iteration"),
        )

    def to_json(self) -> str:
        """Canonical JSON text (sorted keys)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultScenario":
        """Inverse of :meth:`to_json`."""
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise InvalidSpec(f"scenario document is not valid JSON: {exc}") from exc
        return cls.from_dict(data)


def scenario_fault_sets(fault_sets: Iterable) -> List[Tuple]:
    """Normalize vertex fault sets: raw tuples and scenarios both accepted.

    The verifier entry points iterate candidate fault sets; each element
    may be a plain iterable of vertices (the historical calling
    convention) or a :class:`FaultScenario` of kind ``none``/``vertex``.
    """
    out: List[Tuple] = []
    for fs in fault_sets:
        if isinstance(fs, FaultScenario):
            if fs.kind == "edge":
                raise InvalidSpec(
                    "expected a vertex fault scenario, got kind='edge'; "
                    "use the edge-fault verifier"
                )
            out.append(fs.vertices)
        else:
            out.append(tuple(fs))
    return out


def scenario_edge_fault_sets(fault_sets: Iterable) -> List[Tuple]:
    """Normalize edge fault sets (each a tuple of ``(u, v)`` pairs)."""
    out: List[Tuple] = []
    for fs in fault_sets:
        if isinstance(fs, FaultScenario):
            if fs.kind == "vertex":
                raise InvalidSpec(
                    "expected an edge fault scenario, got kind='vertex'; "
                    "use the vertex-fault verifier"
                )
            out.append(fs.edges)
        else:
            out.append(tuple(tuple(pair) for pair in fs))
    return out


__all__ = [
    "FaultScenario",
    "SCENARIO_FORMAT",
    "SCENARIO_KINDS",
    "SCENARIO_VERSION",
    "scenario_fault_sets",
    "scenario_edge_fault_sets",
]
