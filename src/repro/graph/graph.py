"""Core graph data structures.

The library implements its own adjacency-dictionary graphs rather than using
networkx so that the whole stack — spanners, fault-tolerant constructions,
LP builders, and the LOCAL-model simulator — runs on a substrate we control
and can reason about. Vertices are arbitrary hashable objects (the
generators use integers). Each edge carries a single float ``weight``,
interpreted as a *length* by the stretch-k machinery of Section 2 and as a
*cost* by the 2-spanner machinery of Section 3.

:class:`Graph` is undirected and :class:`DiGraph` is directed; both share
the interface defined by :class:`BaseGraph`.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Optional, Tuple

from ..errors import EdgeNotFound, GraphError, NegativeWeightError, VertexNotFound

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]
WeightedEdge = Tuple[Vertex, Vertex, float]


class BaseGraph:
    """Shared behaviour of :class:`Graph` and :class:`DiGraph`."""

    #: Whether edges are directed. Overridden by subclasses.
    directed: bool = False

    def __init__(self) -> None:
        self._adj: Dict[Vertex, Dict[Vertex, float]] = {}
        self._num_edges = 0
        #: Monotone mutation counter. The CSR kernel layer
        #: (:mod:`repro.graph.csr`) snapshots a graph into flat arrays and
        #: caches the snapshot keyed on this counter, so every mutator must
        #: bump it.
        self._version = 0

    # ------------------------------------------------------------------
    # Vertices
    # ------------------------------------------------------------------

    def add_vertex(self, v: Vertex) -> None:
        """Add vertex ``v``; a no-op if it is already present."""
        if v not in self._adj:
            self._adj[v] = {}
            self._version += 1
            self._added_vertex_hook(v)

    def add_vertices(self, vertices: Iterable[Vertex]) -> None:
        """Add every vertex in ``vertices``."""
        for v in vertices:
            self.add_vertex(v)

    def has_vertex(self, v: Vertex) -> bool:
        """Return True if ``v`` is a vertex of the graph."""
        return v in self._adj

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices (insertion order)."""
        return iter(self._adj)

    def vertex_set(self) -> set:
        """Return a new set containing all vertices."""
        return set(self._adj)

    @property
    def num_vertices(self) -> int:
        """Number of vertices, the paper's ``n``."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of edges (each undirected edge counted once)."""
        return self._num_edges

    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    # Hooks for DiGraph's predecessor bookkeeping -----------------------

    def _added_vertex_hook(self, v: Vertex) -> None:
        pass

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    def _require_vertex(self, v: Vertex) -> None:
        if v not in self._adj:
            raise VertexNotFound(v)

    @staticmethod
    def _check_weight(weight: float) -> float:
        weight = float(weight)
        if weight < 0:
            raise NegativeWeightError(f"edge weight must be nonnegative, got {weight}")
        return weight

    # ------------------------------------------------------------------
    # Interface stubs (implemented by subclasses)
    # ------------------------------------------------------------------

    def add_edge(self, u: Vertex, v: Vertex, weight: float = 1.0) -> None:
        raise NotImplementedError

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        raise NotImplementedError

    def edges(self) -> Iterator[WeightedEdge]:
        raise NotImplementedError

    def copy(self) -> "BaseGraph":
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Common derived operations
    # ------------------------------------------------------------------

    def edge_list(self) -> list:
        """Return all weighted edges as a list."""
        return list(self.edges())

    def weight(self, u: Vertex, v: Vertex) -> float:
        """Return the weight of edge ``(u, v)``.

        Raises :class:`EdgeNotFound` if the edge does not exist.
        """
        self._require_vertex(u)
        try:
            return self._adj[u][v]
        except KeyError:
            raise EdgeNotFound(u, v) from None

    def total_weight(self) -> float:
        """Sum of all edge weights (each undirected edge counted once)."""
        return sum(w for _, _, w in self.edges())

    def induced_subgraph(self, vertices: Iterable[Vertex]) -> "BaseGraph":
        """Return the subgraph induced by ``vertices``.

        Vertices not present in the graph are ignored, matching the usual
        mathematical convention for `G[S]` with `S ⊆ V`.

        Vertices (and hence edge enumeration order) are inherited in
        *this* graph's iteration order, not the order of ``vertices`` —
        keeping the result independent of set/hash ordering so that
        seeded algorithms downstream are reproducible across processes.
        """
        keep = {v for v in vertices if v in self._adj}
        sub = type(self)()
        sub.add_vertices(v for v in self._adj if v in keep)
        for u, v, w in self.edges():
            if u in keep and v in keep:
                sub.add_edge(u, v, w)
        return sub

    def without_vertices(self, faults: Iterable[Vertex]) -> "BaseGraph":
        """Return ``G \\ F``: the graph with fault set ``faults`` removed.

        This is the central subgraph operation of the paper — every
        fault-tolerance definition quantifies over ``G \\ F``.
        """
        faults = set(faults)
        return self.induced_subgraph(v for v in self._adj if v not in faults)

    def edge_subgraph(self, edges: Iterable[Edge]) -> "BaseGraph":
        """Return the spanning subgraph containing only ``edges``.

        All vertices are retained (a spanner must span every vertex); each
        requested edge must exist in the graph and keeps its weight.
        """
        sub = type(self)()
        sub.add_vertices(self.vertices())
        for u, v in edges:
            sub.add_edge(u, v, self.weight(u, v))
        return sub

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "DiGraph" if self.directed else "Graph"
        return f"<{kind} n={self.num_vertices} m={self.num_edges}>"


class Graph(BaseGraph):
    """An undirected graph with weighted edges.

    Self-loops are rejected (they are meaningless for spanners), and adding
    an existing edge overwrites its weight.
    """

    directed = False

    def add_edge(self, u: Vertex, v: Vertex, weight: float = 1.0) -> None:
        """Add undirected edge ``{u, v}`` with the given weight.

        Endpoints are added automatically if missing.
        """
        if u == v:
            raise GraphError(f"self-loop on {u!r} is not allowed")
        weight = self._check_weight(weight)
        self.add_vertex(u)
        self.add_vertex(v)
        if v not in self._adj[u]:
            self._num_edges += 1
        self._adj[u][v] = weight
        self._adj[v][u] = weight
        self._version += 1

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove undirected edge ``{u, v}``."""
        self._require_vertex(u)
        if v not in self._adj[u]:
            raise EdgeNotFound(u, v)
        del self._adj[u][v]
        del self._adj[v][u]
        self._num_edges -= 1
        self._version += 1

    def remove_vertex(self, v: Vertex) -> None:
        """Remove vertex ``v`` and all incident edges."""
        self._require_vertex(v)
        for u in list(self._adj[v]):
            self.remove_edge(v, u)
        del self._adj[v]
        self._version += 1

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Return True if ``{u, v}`` is an edge."""
        return u in self._adj and v in self._adj[u]

    def neighbors(self, v: Vertex) -> Iterator[Vertex]:
        """Iterate over the neighbours of ``v``."""
        self._require_vertex(v)
        return iter(self._adj[v])

    def neighbor_items(self, v: Vertex) -> Iterator[Tuple[Vertex, float]]:
        """Iterate over ``(neighbour, weight)`` pairs of ``v``."""
        self._require_vertex(v)
        return iter(self._adj[v].items())

    def degree(self, v: Vertex) -> int:
        """Number of neighbours of ``v``."""
        self._require_vertex(v)
        return len(self._adj[v])

    def max_degree(self) -> int:
        """Maximum degree ``Δ`` over all vertices (0 for the empty graph)."""
        return max((len(nbrs) for nbrs in self._adj.values()), default=0)

    def edges(self) -> Iterator[WeightedEdge]:
        """Iterate over edges, each exactly once, as ``(u, v, weight)``."""
        seen = set()
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                if v not in seen:
                    yield (u, v, w)
            seen.add(u)

    def copy(self) -> "Graph":
        """Return an independent copy of this graph."""
        g = Graph()
        g._adj = {u: dict(nbrs) for u, nbrs in self._adj.items()}
        g._num_edges = self._num_edges
        return g

    def to_directed(self) -> "DiGraph":
        """Return the directed version: each edge becomes two arcs."""
        d = DiGraph()
        d.add_vertices(self.vertices())
        for u, v, w in self.edges():
            d.add_edge(u, v, w)
            d.add_edge(v, u, w)
        return d


class DiGraph(BaseGraph):
    """A directed graph with weighted arcs.

    Maintains both successor and predecessor adjacency so that the
    2-spanner machinery can enumerate in/out neighbourhoods in O(degree).
    """

    directed = True

    def __init__(self) -> None:
        super().__init__()
        self._pred: Dict[Vertex, Dict[Vertex, float]] = {}

    def _added_vertex_hook(self, v: Vertex) -> None:
        self._pred.setdefault(v, {})

    def add_edge(self, u: Vertex, v: Vertex, weight: float = 1.0) -> None:
        """Add arc ``(u, v)`` with the given weight."""
        if u == v:
            raise GraphError(f"self-loop on {u!r} is not allowed")
        weight = self._check_weight(weight)
        self.add_vertex(u)
        self.add_vertex(v)
        if v not in self._adj[u]:
            self._num_edges += 1
        self._adj[u][v] = weight
        self._pred[v][u] = weight
        self._version += 1

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove arc ``(u, v)``."""
        self._require_vertex(u)
        if v not in self._adj[u]:
            raise EdgeNotFound(u, v)
        del self._adj[u][v]
        del self._pred[v][u]
        self._num_edges -= 1
        self._version += 1

    def remove_vertex(self, v: Vertex) -> None:
        """Remove vertex ``v`` and all incident arcs."""
        self._require_vertex(v)
        for u in list(self._adj[v]):
            self.remove_edge(v, u)
        for u in list(self._pred[v]):
            self.remove_edge(u, v)
        del self._adj[v]
        del self._pred[v]
        self._version += 1

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Return True if arc ``(u, v)`` exists."""
        return u in self._adj and v in self._adj[u]

    def successors(self, v: Vertex) -> Iterator[Vertex]:
        """Iterate over out-neighbours ``N+(v)``."""
        self._require_vertex(v)
        return iter(self._adj[v])

    def predecessors(self, v: Vertex) -> Iterator[Vertex]:
        """Iterate over in-neighbours ``N-(v)``."""
        self._require_vertex(v)
        return iter(self._pred[v])

    # ``neighbors`` on a digraph means successors, matching networkx.
    neighbors = successors

    def successor_items(self, v: Vertex) -> Iterator[Tuple[Vertex, float]]:
        """Iterate over ``(out-neighbour, weight)`` pairs."""
        self._require_vertex(v)
        return iter(self._adj[v].items())

    def predecessor_items(self, v: Vertex) -> Iterator[Tuple[Vertex, float]]:
        """Iterate over ``(in-neighbour, weight)`` pairs."""
        self._require_vertex(v)
        return iter(self._pred[v].items())

    def out_degree(self, v: Vertex) -> int:
        """Number of out-neighbours of ``v``."""
        self._require_vertex(v)
        return len(self._adj[v])

    def in_degree(self, v: Vertex) -> int:
        """Number of in-neighbours of ``v``."""
        self._require_vertex(v)
        return len(self._pred[v])

    def max_degree(self) -> int:
        """Max over vertices of max(in-degree, out-degree), the paper's ``Δ``."""
        best = 0
        for v in self._adj:
            best = max(best, len(self._adj[v]), len(self._pred[v]))
        return best

    def edges(self) -> Iterator[WeightedEdge]:
        """Iterate over all arcs as ``(u, v, weight)``."""
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                yield (u, v, w)

    def copy(self) -> "DiGraph":
        """Return an independent copy of this digraph."""
        g = DiGraph()
        g._adj = {u: dict(nbrs) for u, nbrs in self._adj.items()}
        g._pred = {u: dict(nbrs) for u, nbrs in self._pred.items()}
        g._num_edges = self._num_edges
        return g

    def reverse(self) -> "DiGraph":
        """Return the digraph with every arc reversed."""
        g = DiGraph()
        g.add_vertices(self.vertices())
        for u, v, w in self.edges():
            g.add_edge(v, u, w)
        return g

    def to_undirected(self) -> Graph:
        """Collapse arcs into undirected edges (min weight wins on conflict)."""
        g = Graph()
        g.add_vertices(self.vertices())
        for u, v, w in self.edges():
            if g.has_edge(u, v):
                g.add_edge(u, v, min(w, g.weight(u, v)))
            else:
                g.add_edge(u, v, w)
        return g
