"""Replacement paths: distance sensitivity to a single fault.

The paper's conversion draws on the color-coding lineage of replacement-
path data structures (it cites Weimann–Yuster [WY10] as the technique's
recent incarnation). This module provides the direct computational
primitive: for a source–target pair, the shortest-path distance avoiding
each candidate fault — which the analysis layer uses to quantify how much
a single failure can hurt a host graph or a spanner.

The implementation is the straightforward one (one bounded Dijkstra per
candidate fault); candidates default to the vertices/edges of one shortest
path, which are the only faults that can change the distance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from ..errors import DisconnectedError, VertexNotFound
from .graph import BaseGraph
from .paths import dijkstra, dijkstra_with_paths, reconstruct_path

Vertex = Hashable
EdgeKey = Tuple[Vertex, Vertex]


@dataclass
class FaultSensitivity:
    """Distances under each single fault, for one (source, target) pair."""

    source: Vertex
    target: Vertex
    base_distance: float
    #: fault vertex -> d_{G-v}(s, t)
    vertex_faults: Dict[Vertex, float]
    #: fault edge -> d_{G-e}(s, t)
    edge_faults: Dict[EdgeKey, float]

    def worst_vertex_fault(self) -> Optional[Tuple[Vertex, float]]:
        """The single vertex whose removal hurts the distance most."""
        if not self.vertex_faults:
            return None
        fault = max(self.vertex_faults, key=lambda v: self.vertex_faults[v])
        return fault, self.vertex_faults[fault]

    def worst_edge_fault(self) -> Optional[Tuple[EdgeKey, float]]:
        """The single edge whose removal hurts the distance most."""
        if not self.edge_faults:
            return None
        fault = max(self.edge_faults, key=lambda e: self.edge_faults[e])
        return fault, self.edge_faults[fault]

    def max_stretch_under_single_fault(self) -> float:
        """max over faults of d_{G-f}(s,t) / d_G(s,t) (1.0 if fault-free)."""
        worst = self.base_distance
        for d in self.vertex_faults.values():
            worst = max(worst, d)
        for d in self.edge_faults.values():
            worst = max(worst, d)
        if self.base_distance == 0:
            return 1.0 if worst == 0 else math.inf
        return worst / self.base_distance


def replacement_path_distance(
    graph: BaseGraph, source: Vertex, target: Vertex, avoid_vertex: Vertex
) -> float:
    """``d_{G - v}(source, target)``; ``inf`` when disconnected."""
    if avoid_vertex in (source, target):
        raise VertexNotFound(avoid_vertex)
    survivor = graph.without_vertices({avoid_vertex})
    return dijkstra(survivor, source, target=target).get(target, math.inf)


def replacement_edge_distance(
    graph: BaseGraph, source: Vertex, target: Vertex, avoid_edge: EdgeKey
) -> float:
    """``d_{G - e}(source, target)``; ``inf`` when disconnected."""
    u, v = avoid_edge
    survivor = graph.copy()
    if survivor.has_edge(u, v):
        survivor.remove_edge(u, v)
    return dijkstra(survivor, source, target=target).get(target, math.inf)


def fault_sensitivity(
    graph: BaseGraph,
    source: Vertex,
    target: Vertex,
    vertex_candidates: Optional[Iterable[Vertex]] = None,
    edge_candidates: Optional[Iterable[EdgeKey]] = None,
) -> FaultSensitivity:
    """Single-fault sensitivity profile for ``(source, target)``.

    By default the candidates are the interior vertices and the edges of
    one shortest path — removing anything off every shortest path cannot
    increase the distance beyond ties, and those are covered because the
    found path is one witness.
    """
    dist, parent = dijkstra_with_paths(graph, source)
    if target not in dist:
        raise DisconnectedError(f"{target!r} unreachable from {source!r}")
    base = dist[target]
    path = reconstruct_path(parent, source, target)

    if vertex_candidates is None:
        vertex_candidates = path[1:-1]
    if edge_candidates is None:
        edge_candidates = list(zip(path, path[1:]))

    vertex_faults = {
        v: replacement_path_distance(graph, source, target, v)
        for v in vertex_candidates
        if v not in (source, target)
    }
    edge_faults = {
        (u, v): replacement_edge_distance(graph, source, target, (u, v))
        for (u, v) in edge_candidates
    }
    return FaultSensitivity(
        source=source,
        target=target,
        base_distance=base,
        vertex_faults=vertex_faults,
        edge_faults=edge_faults,
    )


def most_fragile_pairs(
    graph: BaseGraph, top: int = 5
) -> List[Tuple[Vertex, Vertex, float]]:
    """Host edges ranked by single-vertex-fault stretch.

    For every edge ``(u, v)``, computes the worst ratio
    ``d_{G-z}(u, v) / w(u, v)`` over single vertex faults ``z`` on a
    shortest u-v path, and returns the ``top`` most fragile. This is the
    diagnostic a network operator would run before choosing ``r``.
    """
    scored = []
    for u, v, w in graph.edges():
        profile = fault_sensitivity(graph, u, v)
        scored.append((u, v, profile.max_stretch_under_single_fault()))
    scored.sort(key=lambda item: -item[2])
    return scored[:top]
