"""Structural graph properties used by experiments and verifiers."""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Tuple

from .graph import BaseGraph, DiGraph, Graph
from .paths import bfs_distances, connected_components, dijkstra

Vertex = Hashable


def density(graph: BaseGraph) -> float:
    """Edge density m / C(n, 2) (or m / (n(n-1)) for digraphs)."""
    n = graph.num_vertices
    if n < 2:
        return 0.0
    pairs = n * (n - 1) if graph.directed else n * (n - 1) / 2
    return graph.num_edges / pairs


def average_degree(graph: BaseGraph) -> float:
    """Average (out-)degree 2m/n (m/n for digraphs)."""
    n = graph.num_vertices
    if n == 0:
        return 0.0
    factor = 1 if graph.directed else 2
    return factor * graph.num_edges / n


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """Map each occurring degree to the number of vertices with it."""
    hist: Dict[int, int] = {}
    for v in graph.vertices():
        d = graph.degree(v)
        hist[d] = hist.get(d, 0) + 1
    return hist


def min_degree(graph: Graph) -> int:
    """Minimum vertex degree (0 for the empty graph)."""
    return min((graph.degree(v) for v in graph.vertices()), default=0)


def girth(graph: Graph, limit: int = 64) ->float:
    """Length of the shortest cycle (unweighted), or ``inf`` if acyclic.

    A BFS from every vertex finds the shortest cycle through it; the girth
    is the minimum. ``limit`` caps the searched cycle length. The greedy
    k-spanner's size bound rests on its output having girth > k + 1, which
    the test suite checks through this function.
    """
    best = math.inf
    for s in graph.vertices():
        dist = {s: 0}
        parent = {s: None}
        queue = [s]
        while queue:
            next_queue = []
            for v in queue:
                if dist[v] * 2 >= min(best, limit):
                    continue
                for u in graph.neighbors(v):
                    if u not in dist:
                        dist[u] = dist[v] + 1
                        parent[u] = v
                        next_queue.append(u)
                    elif parent[v] != u and parent.get(u) != v:
                        # non-tree edge closes a cycle through s
                        best = min(best, dist[v] + dist[u] + 1)
            queue = next_queue
    return best


def vertex_connectivity_lower_bound(graph: Graph, samples: int = 0) -> int:
    """Cheap lower bound on vertex connectivity: the minimum degree.

    Exact vertex connectivity is not needed anywhere in the reproduction;
    experiments only use min-degree as a sanity guard when choosing ``r``
    (an r-fault-tolerant spanner of a graph with min degree <= r must keep
    every edge incident to a low-degree vertex's neighbourhood).
    """
    return min_degree(graph)


def is_subgraph(sub: BaseGraph, graph: BaseGraph) -> bool:
    """True if every vertex and edge of ``sub`` appears in ``graph``.

    Weights must match exactly — spanners must inherit weights from the
    host graph, never rescale them.
    """
    for v in sub.vertices():
        if not graph.has_vertex(v):
            return False
    for u, v, w in sub.edges():
        if not graph.has_edge(u, v) or graph.weight(u, v) != w:
            return False
    return True


def spanning_ratio(sub: BaseGraph, graph: BaseGraph) -> float:
    """Size of ``sub`` relative to ``graph`` (edge count ratio)."""
    if graph.num_edges == 0:
        return 1.0
    return sub.num_edges / graph.num_edges


def largest_component_fraction(graph: BaseGraph) -> float:
    """Fraction of vertices in the largest connected component."""
    n = graph.num_vertices
    if n == 0:
        return 1.0
    return max(len(c) for c in connected_components(graph)) / n
