"""Shortest-path algorithms over :class:`~repro.graph.graph.BaseGraph`.

These routines back every stretch computation in the library: the greedy
spanner queries bounded-distance Dijkstra millions of times, and the
fault-tolerance verifiers compare distances in ``H \\ F`` against ``G \\ F``.

All functions treat edge weights as nonnegative *lengths*; ``math.inf``
denotes unreachability.

Dispatch: on graphs large enough to amortize a snapshot
(:data:`repro.graph.csr.MIN_DISPATCH_VERTICES` vertices), the entry points
below transparently run on the flat-array CSR kernels of
:mod:`repro.graph.csr` — same signatures, same distances and reached
sets, no per-edge hashing. (Shortest-path-tree *parents* may break ties
between equal-length paths differently than the dict implementation;
both are valid tight trees.) Snapshots are cached on the graph and
invalidated by mutation, so
repeated queries (all-pairs sweeps, spanner verification) pay the O(n + m)
conversion once. Small graphs keep the dict implementations, whose
behavior is unchanged.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from ..errors import DisconnectedError, VertexNotFound
from .csr import maybe_snapshot
from .graph import BaseGraph, DiGraph, Graph

Vertex = Hashable

INF = math.inf


def _out_items(graph: BaseGraph, v: Vertex):
    """(neighbour, weight) pairs reachable from ``v`` in one hop."""
    if graph.directed:
        return graph.successor_items(v)  # type: ignore[attr-defined]
    return graph.neighbor_items(v)  # type: ignore[attr-defined]


def dijkstra(
    graph: BaseGraph,
    source: Vertex,
    cutoff: Optional[float] = None,
    target: Optional[Vertex] = None,
) -> Dict[Vertex, float]:
    """Single-source shortest path distances from ``source``.

    Parameters
    ----------
    graph:
        Graph or digraph with nonnegative weights.
    cutoff:
        If given, vertices at distance strictly greater than ``cutoff``
        are not settled or reported. This is the key optimization for the
        greedy spanner, which only asks "is d(u, v) > k * w?".
    target:
        If given, the search stops as soon as ``target`` is settled.

    Returns
    -------
    dict mapping each reached vertex to its distance from ``source``.
    """
    if not graph.has_vertex(source):
        raise VertexNotFound(source)
    bounded = cutoff is not None or target is not None
    csr = maybe_snapshot(graph, build=not bounded)
    if csr is not None:
        return csr.dijkstra_dict(source, cutoff=cutoff, target=target)
    dist: Dict[Vertex, float] = {}
    heap: List[Tuple[float, int, Vertex]] = [(0.0, 0, source)]
    counter = 1  # tie-break so heterogeneous vertex types never get compared
    while heap:
        d, _, v = heapq.heappop(heap)
        if v in dist:
            continue
        dist[v] = d
        if target is not None and v == target:
            break
        for u, w in _out_items(graph, v):
            if u in dist:
                continue
            nd = d + w
            if cutoff is not None and nd > cutoff:
                continue
            heapq.heappush(heap, (nd, counter, u))
            counter += 1
    return dist


def dijkstra_with_paths(
    graph: BaseGraph, source: Vertex, cutoff: Optional[float] = None
) -> Tuple[Dict[Vertex, float], Dict[Vertex, Vertex]]:
    """Like :func:`dijkstra` but also returns a shortest-path-tree parent map.

    The parent map omits ``source`` itself. Reconstruct a path with
    :func:`reconstruct_path`.
    """
    if not graph.has_vertex(source):
        raise VertexNotFound(source)
    csr = maybe_snapshot(graph, build=cutoff is None)
    if csr is not None:
        return csr.dijkstra_with_paths_dict(source, cutoff=cutoff)
    dist: Dict[Vertex, float] = {}
    parent: Dict[Vertex, Vertex] = {}
    best: Dict[Vertex, float] = {source: 0.0}
    heap: List[Tuple[float, int, Vertex]] = [(0.0, 0, source)]
    counter = 1
    while heap:
        d, _, v = heapq.heappop(heap)
        if v in dist:
            continue
        dist[v] = d
        for u, w in _out_items(graph, v):
            if u in dist:
                continue
            nd = d + w
            if cutoff is not None and nd > cutoff:
                continue
            if nd < best.get(u, INF):
                best[u] = nd
                parent[u] = v
                heapq.heappush(heap, (nd, counter, u))
                counter += 1
    return dist, parent


def reconstruct_path(
    parent: Dict[Vertex, Vertex], source: Vertex, target: Vertex
) -> List[Vertex]:
    """Rebuild the vertex sequence from a shortest-path-tree parent map."""
    if target == source:
        return [source]
    if target not in parent:
        raise DisconnectedError(f"no recorded path from {source!r} to {target!r}")
    path = [target]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def bfs_distances(
    graph: BaseGraph, source: Vertex, cutoff: Optional[int] = None
) -> Dict[Vertex, int]:
    """Hop distances from ``source`` (ignores weights).

    Used for cluster diameters in the distributed algorithms, where the
    LOCAL model measures everything in hops.
    """
    if not graph.has_vertex(source):
        raise VertexNotFound(source)
    csr = maybe_snapshot(graph, build=cutoff is None)
    if csr is not None:
        return csr.bfs_dict(source, cutoff=cutoff)
    dist = {source: 0}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        d = dist[v]
        if cutoff is not None and d >= cutoff:
            continue
        for u, _ in _out_items(graph, v):
            if u not in dist:
                dist[u] = d + 1
                queue.append(u)
    return dist


def distance(graph: BaseGraph, u: Vertex, v: Vertex) -> float:
    """Shortest-path distance ``d_G(u, v)``; ``inf`` if unreachable."""
    return dijkstra(graph, u, target=v).get(v, INF)


def distance_at_most(graph: BaseGraph, u: Vertex, v: Vertex, bound: float) -> bool:
    """Return True iff ``d_G(u, v) <= bound``.

    Runs Dijkstra with cutoff ``bound`` and early target termination, so it
    is much cheaper than a full SSSP when the answer is yes-and-close or
    no-by-a-lot. Tolerates a tiny relative epsilon for float safety.
    """
    slack = bound * (1 + 1e-12)
    return dijkstra(graph, u, cutoff=slack, target=v).get(v, INF) <= slack


def all_pairs_distances(graph: BaseGraph) -> Dict[Vertex, Dict[Vertex, float]]:
    """All-pairs shortest path distances via repeated Dijkstra."""
    return {v: dijkstra(graph, v) for v in graph.vertices()}


def eccentricity(graph: BaseGraph, v: Vertex) -> float:
    """Max distance from ``v`` to any vertex (inf if graph is disconnected)."""
    dist = dijkstra(graph, v)
    if len(dist) != graph.num_vertices:
        return INF
    return max(dist.values(), default=0.0)


def weighted_diameter(graph: BaseGraph) -> float:
    """Weighted diameter: max over vertices of :func:`eccentricity`."""
    return max((eccentricity(graph, v) for v in graph.vertices()), default=0.0)


def hop_diameter(graph: BaseGraph) -> float:
    """Unweighted (hop) diameter; ``inf`` if disconnected."""
    best = 0.0
    n = graph.num_vertices
    for v in graph.vertices():
        dist = bfs_distances(graph, v)
        if len(dist) != n:
            return INF
        best = max(best, max(dist.values(), default=0))
    return best


def is_connected(graph: BaseGraph) -> bool:
    """True if the graph is (weakly, for digraphs) connected or empty."""
    n = graph.num_vertices
    if n <= 1:
        return True
    if graph.directed:
        work = graph.to_undirected()  # type: ignore[attr-defined]
    else:
        work = graph
    start = next(iter(work.vertices()))
    return len(bfs_distances(work, start)) == n


def connected_components(graph: BaseGraph) -> List[set]:
    """Connected components (weak components for digraphs)."""
    if graph.directed:
        work = graph.to_undirected()  # type: ignore[attr-defined]
    else:
        work = graph
    remaining = work.vertex_set()
    components = []
    while remaining:
        start = next(iter(remaining))
        comp = set(bfs_distances(work, start))
        components.append(comp)
        remaining -= comp
    return components
