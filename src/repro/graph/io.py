"""Graph serialization: JSON documents, edge-list text, and DOT export.

A practical library needs a way to persist instances and results; the CLI
(:mod:`repro.cli`) reads and writes these formats. Vertex labels survive a
round trip when they are JSON-representable scalars; tuple vertices (used
by the grid/fabric generators) are encoded as JSON arrays and decoded back
to tuples.
"""

from __future__ import annotations

import json
from typing import Hashable, List, TextIO, Union

from ..errors import GraphError
from .graph import BaseGraph, DiGraph, Graph

Vertex = Hashable

#: Format version stamped into JSON documents.
FORMAT_VERSION = 1


def _encode_vertex(v: Vertex):
    if isinstance(v, tuple):
        return list(_encode_vertex(part) for part in v)
    if isinstance(v, (str, int, float, bool)) or v is None:
        return v
    raise GraphError(
        f"vertex {v!r} is not JSON-serializable; use scalars or tuples"
    )


def _decode_vertex(v):
    if isinstance(v, list):
        return tuple(_decode_vertex(part) for part in v)
    return v


def graph_to_dict(graph: BaseGraph) -> dict:
    """Serialize a graph to a plain JSON-compatible dict."""
    return {
        "format": "repro-graph",
        "version": FORMAT_VERSION,
        "directed": graph.directed,
        "vertices": [_encode_vertex(v) for v in graph.vertices()],
        "edges": [
            [_encode_vertex(u), _encode_vertex(v), w]
            for u, v, w in graph.edges()
        ],
    }


def graph_from_dict(data: dict) -> BaseGraph:
    """Deserialize a graph written by :func:`graph_to_dict`."""
    if data.get("format") != "repro-graph":
        raise GraphError("not a repro-graph document")
    if data.get("version") != FORMAT_VERSION:
        raise GraphError(
            f"unsupported format version {data.get('version')!r} "
            f"(expected {FORMAT_VERSION})"
        )
    graph: BaseGraph = DiGraph() if data["directed"] else Graph()
    graph.add_vertices(_decode_vertex(v) for v in data["vertices"])
    for u, v, w in data["edges"]:
        graph.add_edge(_decode_vertex(u), _decode_vertex(v), float(w))
    return graph


def dump_json(graph: BaseGraph, path: str) -> None:
    """Write a graph to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(graph_to_dict(graph), handle)


def load_json(path: str) -> BaseGraph:
    """Read a graph from a JSON file written by :func:`dump_json`."""
    with open(path, "r", encoding="utf-8") as handle:
        return graph_from_dict(json.load(handle))


def dump_edge_list(graph: BaseGraph, handle: TextIO) -> None:
    """Write a whitespace-separated edge list (``u v weight`` per line).

    Only scalar vertex labels without whitespace are supported; a header
    line records directedness and isolated vertices are listed on
    ``# vertex`` lines so they survive the round trip.
    """
    kind = "digraph" if graph.directed else "graph"
    handle.write(f"# repro-edge-list {kind}\n")
    touched = set()
    for u, v, _w in graph.edges():
        touched.add(u)
        touched.add(v)
    for v in graph.vertices():
        if v not in touched:
            handle.write(f"# vertex {v}\n")
    for u, v, w in graph.edges():
        for label in (u, v):
            text = str(label)
            if any(ch.isspace() for ch in text):
                raise GraphError(
                    f"vertex label {label!r} contains whitespace; "
                    "use JSON serialization instead"
                )
        handle.write(f"{u} {v} {w}\n")


def load_edge_list(handle: TextIO) -> BaseGraph:
    """Read a whitespace-separated edge list, tolerantly.

    Accepts files written by :func:`dump_edge_list` and plain corpus edge
    lists from the wild:

    * the ``# repro-edge-list graph|digraph`` header is optional (files
      without one load as undirected);
    * a ``# directed`` comment line before the first edge switches to a
      digraph;
    * blank lines and other ``#`` comments are skipped anywhere;
    * edge lines are ``u v`` or ``u v weight`` (weight defaults to 1.0);
    * ``# vertex LABEL`` records an isolated vertex.

    Vertex labels are parsed as ints when possible, floats next, and kept
    as strings otherwise. Malformed input raises a :class:`GraphError`
    naming the 1-based line number and the offending text.
    """

    def parse_label(text: str):
        for cast in (int, float):
            try:
                return cast(text)
            except ValueError:
                continue
        return text

    def fail(number: int, line: str, why: str) -> None:
        raise GraphError(f"edge list line {number}: {why} (got {line!r})")

    directed = False
    edges: List[tuple] = []
    isolated: List[Vertex] = []
    saw_edges = False
    for number, raw in enumerate(handle, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            comment = line[1:].strip()
            if comment.startswith("repro-edge-list"):
                kind = comment[len("repro-edge-list"):].strip()
                if kind not in ("graph", "digraph"):
                    fail(number, line, "header kind must be 'graph' or 'digraph'")
                if saw_edges:
                    fail(number, line, "header must precede every edge line")
                directed = kind == "digraph"
            elif comment == "directed":
                if saw_edges:
                    fail(number, line, "'# directed' must precede every edge line")
                directed = True
            elif comment.startswith("vertex "):
                isolated.append(parse_label(comment[len("vertex "):]))
            continue
        parts = line.split()
        if len(parts) not in (2, 3):
            fail(number, line, "expected 'u v' or 'u v weight'")
        if len(parts) == 3:
            try:
                weight = float(parts[2])
            except ValueError:
                fail(number, line, f"edge weight must be a number, not {parts[2]!r}")
        else:
            weight = 1.0
        saw_edges = True
        edges.append((number, line, parse_label(parts[0]), parse_label(parts[1]), weight))
    graph: BaseGraph = DiGraph() if directed else Graph()
    graph.add_vertices(isolated)
    for number, line, u, v, weight in edges:
        try:
            graph.add_edge(u, v, weight)
        except GraphError as exc:
            fail(number, line, str(exc))
    return graph


def to_dot(graph: BaseGraph, highlight: Union[BaseGraph, None] = None) -> str:
    """Render the graph in Graphviz DOT, optionally bolding a subgraph.

    ``highlight`` (typically a spanner of ``graph``) marks its edges bold
    red so "what did the algorithm keep" is visible at a glance.
    """
    directed = graph.directed
    name = "digraph" if directed else "graph"
    arrow = "->" if directed else "--"
    lines: List[str] = [f"{name} repro {{"]
    for v in graph.vertices():
        lines.append(f'  "{v}";')
    for u, v, w in graph.edges():
        attrs = [f'label="{w:g}"']
        if highlight is not None and highlight.has_edge(u, v):
            attrs.append("color=red")
            attrs.append("penwidth=2.0")
        lines.append(f'  "{u}" {arrow} "{v}" [{", ".join(attrs)}];')
    lines.append("}")
    return "\n".join(lines)
