"""Graph generators used as experiment workloads.

Every generator takes an optional ``seed`` (int or :class:`random.Random`)
and produces deterministic output given the seed. Vertices are integers
``0..n-1`` unless stated otherwise.

The generators cover:

* classical deterministic families (complete, bipartite, path, cycle, star,
  grid, hypercube) used by unit tests and the integrality-gap experiments;
* random families (Erdős–Rényi, random-regular, Barabási–Albert,
  random-geometric) used as benchmark workloads;
* the two adversarial instances from the paper: the complete digraph that
  breaks the old flow LP (Section 3.1) and the ``M``-gadget that breaks
  LP (3) without knapsack-cover inequalities (Section 3.2).
"""

from __future__ import annotations

import itertools
import math
from typing import Optional, Tuple

from ..errors import GraphError
from ..rng import RandomLike, ensure_rng
from .graph import DiGraph, Graph

# ---------------------------------------------------------------------------
# Deterministic families
# ---------------------------------------------------------------------------


def complete_graph(n: int, weight: float = 1.0) -> Graph:
    """Complete undirected graph ``K_n`` with uniform edge weight."""
    g = Graph()
    g.add_vertices(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            g.add_edge(u, v, weight)
    return g


def complete_digraph(n: int, weight: float = 1.0) -> DiGraph:
    """Complete digraph on ``n`` vertices (all ordered pairs)."""
    g = DiGraph()
    g.add_vertices(range(n))
    for u in range(n):
        for v in range(n):
            if u != v:
                g.add_edge(u, v, weight)
    return g


def complete_bipartite_graph(a: int, b: int, weight: float = 1.0) -> Graph:
    """Complete bipartite graph ``K_{a,b}``.

    Left side is ``0..a-1``, right side is ``a..a+b-1``. This is the
    classical witness that 2-spanners admit no nontrivial absolute size
    bound (every edge is forced).
    """
    g = Graph()
    g.add_vertices(range(a + b))
    for u in range(a):
        for v in range(a, a + b):
            g.add_edge(u, v, weight)
    return g


def path_graph(n: int, weight: float = 1.0) -> Graph:
    """Path on ``n`` vertices."""
    g = Graph()
    g.add_vertices(range(n))
    for v in range(n - 1):
        g.add_edge(v, v + 1, weight)
    return g


def cycle_graph(n: int, weight: float = 1.0) -> Graph:
    """Cycle on ``n >= 3`` vertices."""
    if n < 3:
        raise GraphError(f"cycle needs at least 3 vertices, got {n}")
    g = path_graph(n, weight)
    g.add_edge(n - 1, 0, weight)
    return g


def star_graph(n: int, weight: float = 1.0) -> Graph:
    """Star with centre 0 and ``n`` leaves ``1..n``."""
    g = Graph()
    g.add_vertices(range(n + 1))
    for leaf in range(1, n + 1):
        g.add_edge(0, leaf, weight)
    return g


def grid_graph(rows: int, cols: int, weight: float = 1.0) -> Graph:
    """2D grid graph; vertex ``(i, j)`` for 0<=i<rows, 0<=j<cols."""
    g = Graph()
    for i in range(rows):
        for j in range(cols):
            g.add_vertex((i, j))
    for i in range(rows):
        for j in range(cols):
            if i + 1 < rows:
                g.add_edge((i, j), (i + 1, j), weight)
            if j + 1 < cols:
                g.add_edge((i, j), (i, j + 1), weight)
    return g


def hypercube_graph(dim: int) -> Graph:
    """Boolean hypercube of dimension ``dim``; vertices are ints 0..2^dim-1."""
    g = Graph()
    n = 1 << dim
    g.add_vertices(range(n))
    for v in range(n):
        for bit in range(dim):
            u = v ^ (1 << bit)
            if u > v:
                g.add_edge(v, u, 1.0)
    return g


# ---------------------------------------------------------------------------
# Structured interconnect families
# ---------------------------------------------------------------------------


def kautz_graph(d: int, diameter: int, weight: float = 1.0) -> DiGraph:
    """Kautz digraph ``K(d, D)`` with ``D = diameter``.

    Vertices are the ``(d + 1) * d^D`` strings of length ``D + 1`` over an
    alphabet of ``d + 1`` symbols with no two consecutive symbols equal,
    relabelled ``0..n-1`` in lexicographic order. There is an arc from
    ``s_0 s_1 … s_D`` to ``s_1 … s_D x`` for every ``x != s_D``, so every
    vertex has out-degree (and in-degree) exactly ``d`` and ``m = n * d``.

    The family's defining property for spanner experiments: between every
    ordered pair of distinct vertices there is a *unique* shortest path
    (walking from ``u`` to ``v`` shifts in ``v``'s symbols one at a time,
    and the minimal number of shifts — the overlap of ``u``'s suffix with
    ``v``'s prefix — forces every intermediate string). That makes Kautz
    hosts a sharp stress test for tie-breaking rules and for the directed
    CSR dispatch path.
    """
    if d < 1:
        raise GraphError(f"Kautz graph needs degree d >= 1, got {d}")
    if diameter < 1:
        raise GraphError(f"Kautz graph needs diameter >= 1, got {diameter}")
    sequences = [(a,) for a in range(d + 1)]
    for _ in range(diameter):
        sequences = [
            s + (b,) for s in sequences for b in range(d + 1) if b != s[-1]
        ]
    index = {s: i for i, s in enumerate(sequences)}
    g = DiGraph()
    g.add_vertices(range(len(sequences)))
    for s, i in index.items():
        for b in range(d + 1):
            if b != s[-1]:
                g.add_edge(i, index[s[1:] + (b,)], weight)
    return g


def dcell_counts(n: int, level: int) -> Tuple[int, int]:
    """Closed-form ``(vertices, edges)`` of :func:`dcell_graph`.

    ``t_0 = n`` and ``t_l = t_{l-1} * (t_{l-1} + 1)``; a level-``l`` DCell
    is ``t_{l-1} + 1`` copies of the level-``l-1`` DCell plus one level
    link per copy pair, so ``e_0 = C(n, 2)`` and
    ``e_l = (t_{l-1} + 1) * e_{l-1} + C(t_{l-1} + 1, 2)``.
    """
    if n < 2:
        raise GraphError(f"DCell needs at least 2 servers per cell, got {n}")
    if level < 0:
        raise GraphError(f"DCell level must be >= 0, got {level}")
    t = n
    e = n * (n - 1) // 2
    for _ in range(level):
        copies = t + 1
        e = copies * e + copies * (copies - 1) // 2
        t = t * copies
    return t, e


def dcell_graph(n: int, level: int, weight: float = 1.0) -> Graph:
    """Recursively-defined DCell datacenter fabric ``DCell_level(n)``.

    ``DCell_0`` is a clique of ``n`` servers (one switch, modelled as
    direct links). ``DCell_l`` takes ``t_{l-1} + 1`` copies of
    ``DCell_{l-1}`` (where ``t_{l-1}`` is the sub-cell's server count) and
    adds exactly one server-to-server link between every pair of copies:
    copy ``i`` and copy ``j > i`` are joined by
    ``servers_i[j - 1] -- servers_j[i]``, the standard DCell wiring that
    gives each server at most one link per level. Vertices are tuples
    ``(c_level, …, c_1, i)`` naming the copy path and the server index.
    """
    expected, _ = dcell_counts(n, level)  # validates n and level
    g = Graph()

    def build_cell(prefix: Tuple[int, ...], l: int) -> list:
        if l == 0:
            servers = [prefix + (i,) for i in range(n)]
            for s in servers:
                g.add_vertex(s)
            for i in range(n):
                for j in range(i + 1, n):
                    g.add_edge(servers[i], servers[j], weight)
            return servers
        sub_servers, _ = dcell_counts(n, l - 1)
        copies = [build_cell(prefix + (c,), l - 1) for c in range(sub_servers + 1)]
        for i in range(len(copies)):
            for j in range(i + 1, len(copies)):
                g.add_edge(copies[i][j - 1], copies[j][i], weight)
        return [s for copy in copies for s in copy]

    servers = build_cell((), level)
    assert len(servers) == expected
    return g


def watts_strogatz_graph(
    n: int, k: int, p: float, seed: RandomLike = None, weight: float = 1.0
) -> Graph:
    """Watts–Strogatz small-world graph (ring lattice + seeded rewiring).

    Starts from a ring of ``n`` vertices each joined to its ``k`` nearest
    neighbours (``k`` even), then rewires each lattice edge's far endpoint
    with probability ``p`` to a uniform non-duplicate target — the
    standard construction, so the edge count stays exactly ``n * k / 2``.
    """
    if k % 2 != 0:
        raise GraphError(f"Watts-Strogatz needs even k, got {k}")
    if not 2 <= k < n:
        raise GraphError(f"Watts-Strogatz needs 2 <= k < n, got k={k}, n={n}")
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"p must be in [0, 1], got {p}")
    rng = ensure_rng(seed)
    g = Graph()
    g.add_vertices(range(n))
    for j in range(1, k // 2 + 1):
        for u in range(n):
            g.add_edge(u, (u + j) % n, weight)
    for j in range(1, k // 2 + 1):
        for u in range(n):
            if rng.random() >= p:
                continue
            old = (u + j) % n
            # Skip saturated vertices instead of looping forever.
            if g.degree(u) >= n - 1:
                continue
            while True:
                new = rng.randrange(n)
                if new != u and not g.has_edge(u, new):
                    break
            g.remove_edge(u, old)
            g.add_edge(u, new, weight)
    return g


def powerlaw_cluster_graph(
    n: int, m: int, p: float, seed: RandomLike = None
) -> Graph:
    """Holme–Kim power-law graph with tunable clustering.

    Grows like Barabási–Albert (each new vertex makes ``m`` links), but
    after every preferential link the next link is, with probability
    ``p``, a *triad closure* to a random neighbour of the vertex just
    linked — raising the clustering coefficient while keeping the
    power-law degree tail.
    """
    if m < 1 or m >= n:
        raise GraphError(f"need 1 <= m < n, got m={m}, n={n}")
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"p must be in [0, 1], got {p}")
    rng = ensure_rng(seed)
    g = Graph()
    g.add_vertices(range(n))
    repeated = list(range(m))
    for v in range(m, n):
        target = repeated[rng.randrange(len(repeated))]
        g.add_edge(v, target, 1.0)
        new_targets = [target]
        while len(new_targets) < m:
            if rng.random() < p:
                neighbours = [
                    w
                    for w in g.neighbors(new_targets[-1])
                    if w != v and not g.has_edge(v, w)
                ]
                if neighbours:
                    choice = neighbours[rng.randrange(len(neighbours))]
                    g.add_edge(v, choice, 1.0)
                    new_targets.append(choice)
                    continue
            while True:
                candidate = repeated[rng.randrange(len(repeated))]
                if candidate != v and not g.has_edge(v, candidate):
                    break
            g.add_edge(v, candidate, 1.0)
            new_targets.append(candidate)
        repeated.extend(new_targets)
        repeated.extend([v] * m)
    return g


# ---------------------------------------------------------------------------
# Random families
# ---------------------------------------------------------------------------


def gnp_random_graph(
    n: int,
    p: float,
    seed: RandomLike = None,
    weight_range: Optional[Tuple[float, float]] = None,
) -> Graph:
    """Erdős–Rényi ``G(n, p)``.

    With ``weight_range=(lo, hi)`` edge weights are uniform in that range;
    otherwise all weights are 1 (the unit-length setting of Section 3).
    """
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"p must be in [0, 1], got {p}")
    rng = ensure_rng(seed)
    g = Graph()
    g.add_vertices(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                w = rng.uniform(*weight_range) if weight_range else 1.0
                g.add_edge(u, v, w)
    return g


def gnp_random_digraph(
    n: int,
    p: float,
    seed: RandomLike = None,
    cost_range: Optional[Tuple[float, float]] = None,
) -> DiGraph:
    """Directed Erdős–Rényi graph with optional uniform random arc costs.

    This is the workload for the directed Minimum Cost r-Fault Tolerant
    2-Spanner experiments (E6).
    """
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"p must be in [0, 1], got {p}")
    rng = ensure_rng(seed)
    g = DiGraph()
    g.add_vertices(range(n))
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < p:
                c = rng.uniform(*cost_range) if cost_range else 1.0
                g.add_edge(u, v, c)
    return g


def random_regular_graph(n: int, d: int, seed: RandomLike = None) -> Graph:
    """Random ``d``-regular simple graph via the pairing model + edge swaps.

    Requires ``n * d`` even and ``d < n``. A random stub pairing is drawn
    and conflicts (self-loops, parallel edges) are repaired by degree-
    preserving double-edge swaps with a clean edge — the standard practical
    fix, since restarting the whole pairing succeeds only with probability
    ``~e^{-d²/4}``. Used for the bounded-degree experiments (E7), where the
    paper's Theorem 3.4 gives an O(log Δ) guarantee.
    """
    if d >= n:
        raise GraphError(f"degree {d} must be < n = {n}")
    if (n * d) % 2 != 0:
        raise GraphError(f"n * d must be even, got n={n}, d={d}")
    rng = ensure_rng(seed)
    for _restart in range(50):
        stubs = [v for v in range(n) for _ in range(d)]
        rng.shuffle(stubs)
        # Multiset of pairs; conflicts repaired by swaps below.
        pairs = [
            (stubs[i], stubs[i + 1]) for i in range(0, len(stubs), 2)
        ]
        edge_set = set()
        bad: list = []
        for u, v in pairs:
            key = (min(u, v), max(u, v))
            if u == v or key in edge_set:
                bad.append((u, v))
            else:
                edge_set.add(key)
        swaps_left = 200 * (len(bad) + 1)
        good = list(edge_set)
        while bad and swaps_left > 0 and good:
            swaps_left -= 1
            u, v = bad[-1]
            x, y = good[rng.randrange(len(good))]
            if rng.random() < 0.5:
                x, y = y, x
            # Proposed replacement pairs: (u, x) and (v, y).
            a = (min(u, x), max(u, x))
            b = (min(v, y), max(v, y))
            if u == x or v == y or a in edge_set or b in edge_set or a == b:
                continue
            bad.pop()
            edge_set.remove((min(x, y), max(x, y)))
            edge_set.add(a)
            edge_set.add(b)
            good = list(edge_set)
        if not bad:
            g = Graph()
            g.add_vertices(range(n))
            for u, v in edge_set:
                g.add_edge(u, v, 1.0)
            return g
    raise GraphError(f"failed to sample a simple {d}-regular graph on {n} vertices")


def barabasi_albert_graph(n: int, m: int, seed: RandomLike = None) -> Graph:
    """Barabási–Albert preferential attachment graph.

    Starts from a star on ``m + 1`` vertices; each new vertex attaches to
    ``m`` distinct existing vertices chosen proportionally to degree.
    """
    if m < 1 or m >= n:
        raise GraphError(f"need 1 <= m < n, got m={m}, n={n}")
    rng = ensure_rng(seed)
    g = Graph()
    g.add_vertices(range(n))
    # repeated-vertex list implements degree-proportional sampling
    repeated = []
    for v in range(1, m + 1):
        g.add_edge(0, v, 1.0)
        repeated.extend([0, v])
    for v in range(m + 1, n):
        targets = set()
        while len(targets) < m:
            targets.add(rng.choice(repeated))
        for t in targets:
            g.add_edge(v, t, 1.0)
            repeated.extend([v, t])
    return g


def random_geometric_graph(
    n: int, radius: float, seed: RandomLike = None, euclidean_weights: bool = True
) -> Graph:
    """Random geometric graph on the unit square.

    Points are uniform in [0,1]^2; vertices within ``radius`` are joined.
    With ``euclidean_weights`` the edge weight is the Euclidean distance —
    this exercises the general-edge-length path of the Section 2 machinery.
    """
    rng = ensure_rng(seed)
    points = [(rng.random(), rng.random()) for _ in range(n)]
    g = Graph()
    g.add_vertices(range(n))
    r2 = radius * radius
    for u in range(n):
        xu, yu = points[u]
        for v in range(u + 1, n):
            xv, yv = points[v]
            d2 = (xu - xv) ** 2 + (yu - yv) ** 2
            if d2 <= r2:
                w = math.sqrt(d2) if euclidean_weights else 1.0
                g.add_edge(u, v, max(w, 1e-9))
    return g


def connected_gnp_graph(
    n: int,
    p: float,
    seed: RandomLike = None,
    weight_range: Optional[Tuple[float, float]] = None,
    max_tries: int = 200,
) -> Graph:
    """Sample ``G(n, p)`` conditioned on connectivity (rejection sampling)."""
    from .paths import is_connected

    rng = ensure_rng(seed)
    for _ in range(max_tries):
        g = gnp_random_graph(n, p, seed=rng, weight_range=weight_range)
        if is_connected(g):
            return g
    raise GraphError(
        f"could not sample a connected G({n}, {p}) in {max_tries} attempts; increase p"
    )


# ---------------------------------------------------------------------------
# Adversarial instances from the paper
# ---------------------------------------------------------------------------


def knapsack_gap_gadget(r: int, expensive_cost: float = 1000.0) -> DiGraph:
    """The Section 3.2 gadget showing LP (3) has gap Ω(r) without KC cuts.

    Vertices: ``'u'``, ``'v'``, and midpoints ``('w', i)`` for i in [r].
    Arcs: (u, v) with large cost ``expensive_cost``, and unit-cost arcs
    (u, w_i) and (w_i, v) for every i.

    The set of all midpoints is a valid fault set, so any r-fault-tolerant
    2-spanner must buy the expensive edge (OPT >= expensive_cost), while the
    plain LP (3) pays only ``expensive_cost / (r + 1) + 2r``.
    """
    if r < 1:
        raise GraphError(f"gadget needs r >= 1, got {r}")
    g = DiGraph()
    g.add_vertex("u")
    g.add_vertex("v")
    g.add_edge("u", "v", expensive_cost)
    for i in range(r):
        w = ("w", i)
        g.add_edge("u", w, 1.0)
        g.add_edge(w, "v", 1.0)
    return g


def parallel_paths_instance(
    demands: int, width: int, direct_cost: Optional[float] = None
) -> DiGraph:
    """Directed instance with many parallel 2-paths per demand (E6 workload).

    For each demand ``j`` there are endpoints ``("s", j)``, ``("t", j)``, a
    direct arc of cost ``direct_cost`` (default ``width + 10``), and
    ``width`` disjoint midpoints ``("m", j, i)`` with unit-cost arcs
    ``s → m_i → t``.

    Why this family: the optimal r-FT 2-spanner buys ``r + 1`` cheap
    two-paths per demand (cost ``2(r+1)``), and the LP spreads flow
    ``(r+1)/width`` per path — so the x values are *small*. That keeps
    threshold rounding out of its saturation regime (where ``α·x >= 1``
    buys everything) and makes the α = Θ(log n) vs α = Θ(r log n)
    difference between Theorem 3.3 and the [DK10] baseline visible at
    laptop scale.
    """
    if demands < 1 or width < 1:
        raise GraphError(f"need demands >= 1 and width >= 1, got {demands}, {width}")
    cost = float(direct_cost) if direct_cost is not None else float(width + 10)
    g = DiGraph()
    for j in range(demands):
        s, t = ("s", j), ("t", j)
        g.add_edge(s, t, cost)
        for i in range(width):
            m = ("m", j, i)
            g.add_edge(s, m, 1.0)
            g.add_edge(m, t, 1.0)
    return g


def layered_fault_graph(width: int, layers: int, weight: float = 1.0) -> Graph:
    """Layered graph with ``width`` parallel vertex-disjoint paths.

    Consecutive layers are completely joined. Removing up to ``width - 1``
    vertices per cut still leaves a path, which makes this a convenient
    stress instance for fault-tolerance verifiers: its exact tolerance is
    easy to reason about.
    """
    if width < 1 or layers < 2:
        raise GraphError(f"need width >= 1 and layers >= 2, got {width}, {layers}")
    g = Graph()
    for layer in range(layers):
        for i in range(width):
            g.add_vertex((layer, i))
    for layer in range(layers - 1):
        for i in range(width):
            for j in range(width):
                g.add_edge((layer, i), (layer + 1, j), weight)
    return g
