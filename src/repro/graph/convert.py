"""Bridges between :mod:`repro.graph` and :mod:`networkx`.

networkx is used only here (and in tests as an independent cross-check for
our shortest-path code); the algorithms themselves run entirely on the
native :class:`~repro.graph.graph.Graph` / :class:`DiGraph` substrate.
"""

from __future__ import annotations

from .graph import BaseGraph, DiGraph, Graph


def to_networkx(graph: BaseGraph):
    """Convert a repro graph to the corresponding networkx graph.

    Edge weights are stored under the ``"weight"`` attribute.
    """
    import networkx as nx

    out = nx.DiGraph() if graph.directed else nx.Graph()
    out.add_nodes_from(graph.vertices())
    for u, v, w in graph.edges():
        out.add_edge(u, v, weight=w)
    return out


def from_networkx(nx_graph) -> BaseGraph:
    """Convert a networkx (Di)Graph to a repro graph.

    Missing ``"weight"`` attributes default to 1.0, matching networkx's
    own convention for weighted algorithms.
    """
    import networkx as nx

    if isinstance(nx_graph, (nx.MultiGraph, nx.MultiDiGraph)):
        raise TypeError("multigraphs are not supported; collapse parallel edges first")
    out: BaseGraph = DiGraph() if nx_graph.is_directed() else Graph()
    out.add_vertices(nx_graph.nodes())
    for u, v, data in nx_graph.edges(data=True):
        out.add_edge(u, v, float(data.get("weight", 1.0)))
    return out
