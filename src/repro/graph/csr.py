"""CSR fast-path kernel layer.

The dict-of-dict :class:`~repro.graph.graph.Graph` is the friendly public
substrate — hashable vertices, O(1) edge updates — but every hot loop in
the reproduction (cutoff Dijkstra inside the greedy spanner, the
``α = Θ(r³ log n)`` oversampling loop of Theorem 2.1, the Lemma 3.1
verifier) pays per-edge hashing and per-iteration graph copies on it.

This module provides an *immutable* compressed-sparse-row snapshot,
:class:`CSRGraph`, plus array-based kernels that run on flat integer
indices:

* cutoff / early-target Dijkstra (:meth:`CSRGraph.dijkstra_idx`),
* labeled multi-source Dijkstra (:meth:`CSRGraph.multi_source_dijkstra_idx`),
  returning nearest-source owner + distance arrays — the Thorup–Zwick
  level-distance / witness pass and cluster joining,
* barrier-restricted Dijkstra (:meth:`CSRGraph.barrier_dijkstra_idx`) for
  the TZ cluster trees ``C(w) = {v : d(w, v) < d(A_{i+1}, v)}``, and the
  compiled batched equivalents in :class:`SciPyGraphKernels`,
* batched BFS (:meth:`CSRGraph.bfs_idx`, :meth:`CSRGraph.batched_bfs_idx`)
  and reusable truncated-radius BFS balls (:class:`BFSBalls`) for the
  Lemma 3.7 padded-decomposition sampler,
* survivor-mask subgraph views (:class:`SurvivorView`) that filter edges
  in O(m) — via one vectorized NumPy pass when available — without ever
  rebuilding an adjacency dict.

Hot arrays are plain Python lists (CPython element access on lists beats
NumPy scalar indexing inside interpreted loops); endpoint arrays are
mirrored into NumPy only where whole-array vectorization wins (survivor
masking). The snapshot is cached on the source graph keyed by its mutation
counter, so repeated queries — ``all_pairs_distances``, verification
sweeps, spanner stretch checks — build it exactly once.

``graph/paths.py`` dispatches to these kernels transparently; public
signatures and semantics there are unchanged.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from .graph import BaseGraph, DiGraph, Graph
from .scenario import FaultScenario

try:  # NumPy is part of the baked-in toolchain, but stay importable without it.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on stripped images
    _np = None

try:  # SciPy's compiled csgraph kernels back the batched-SSSP fast paths.
    from scipy.sparse import csr_matrix as _sp_csr_matrix
    from scipy.sparse.csgraph import dijkstra as _sp_dijkstra
except ImportError:  # pragma: no cover - exercised only on stripped images
    _sp_csr_matrix = None
    _sp_dijkstra = None

Vertex = Hashable

INF = math.inf

#: Below this vertex count the dict algorithms win (snapshot overhead
#: dominates); :func:`maybe_snapshot` returns None and callers fall back.
MIN_DISPATCH_VERTICES = 48


class CSRGraph:
    """Immutable int-indexed CSR snapshot of a :class:`Graph` / :class:`DiGraph`.

    Vertices are mapped to indices ``0..n-1`` in the source graph's
    iteration order (``verts`` / ``index`` are the two translation tables).
    For undirected graphs every edge is stored as two half-edges sharing
    one *edge id*; ``edge_u/edge_v/edge_w`` list each unique edge once, in
    the source graph's ``edges()`` order, so edge ids are stable and can be
    unioned across survivor subsamples as plain integers.
    """

    __slots__ = (
        "directed",
        "verts",
        "index",
        "indptr",
        "nbr",
        "wt",
        "eid",
        "edge_u",
        "edge_v",
        "edge_w",
        "_edge_u_np",
        "_edge_v_np",
        "_half_np",
        "_sp_kernels",
        "_engine_tables",
        "_engine_nbrs",
        "_engine_nbr_idx",
        "_uv_eid",
    )

    def __init__(self) -> None:
        self.directed: bool = False
        self.verts: List[Vertex] = []
        self.index: Dict[Vertex, int] = {}
        self.indptr: List[int] = [0]
        self.nbr: List[int] = []
        self.wt: List[float] = []
        self.eid: List[int] = []
        self.edge_u: List[int] = []
        self.edge_v: List[int] = []
        self.edge_w: List[float] = []
        self._edge_u_np = None
        self._edge_v_np = None
        self._half_np = None
        self._sp_kernels = None
        #: Routing tables of the LOCAL-model round engine (half-edge
        #: sources + per-vertex out-slot maps), built lazily by
        #: :class:`repro.distsim.engine.ArrayRoundEngine` and cached here
        #: because the snapshot is immutable.
        self._engine_tables = None
        #: Per-vertex neighbor-label and receiver-index tuples for the
        #: round engine's unmasked contexts — also engine-owned, also
        #: safe to cache here because the snapshot is immutable.
        self._engine_nbrs = None
        self._engine_nbr_idx = None
        #: Lazy ``(u_idx, v_idx) -> edge id`` table (undirected pairs are
        #: normalized) for translating :class:`FaultScenario` edge lists.
        self._uv_eid = None

    # ------------------------------------------------------------------
    # Construction / round-trip
    # ------------------------------------------------------------------

    @classmethod
    def from_graph(cls, graph: BaseGraph) -> "CSRGraph":
        """Snapshot ``graph`` into CSR arrays (O(n + m))."""
        snap = cls()
        snap.directed = bool(graph.directed)
        verts = list(graph.vertices())
        index = {v: i for i, v in enumerate(verts)}
        snap.verts = verts
        snap.index = index
        n = len(verts)

        edge_u: List[int] = []
        edge_v: List[int] = []
        edge_w: List[float] = []
        deg = [0] * n
        for u, v, w in graph.edges():
            ui = index[u]
            vi = index[v]
            edge_u.append(ui)
            edge_v.append(vi)
            edge_w.append(w)
            deg[ui] += 1
            if not snap.directed:
                deg[vi] += 1
        snap.edge_u = edge_u
        snap.edge_v = edge_v
        snap.edge_w = edge_w

        indptr = [0] * (n + 1)
        for i in range(n):
            indptr[i + 1] = indptr[i] + deg[i]
        m_half = indptr[n]
        nbr = [0] * m_half
        wt = [0.0] * m_half
        eid = [0] * m_half
        cursor = indptr[:n]  # per-vertex fill position
        for e, (ui, vi) in enumerate(zip(edge_u, edge_v)):
            w = edge_w[e]
            c = cursor[ui]
            nbr[c] = vi
            wt[c] = w
            eid[c] = e
            cursor[ui] = c + 1
            if not snap.directed:
                c = cursor[vi]
                nbr[c] = ui
                wt[c] = w
                eid[c] = e
                cursor[vi] = c + 1
        snap.indptr = indptr
        snap.nbr = nbr
        snap.wt = wt
        snap.eid = eid
        if _np is not None:
            snap._edge_u_np = _np.asarray(edge_u, dtype=_np.int64)
            snap._edge_v_np = _np.asarray(edge_v, dtype=_np.int64)
        return snap

    def to_graph(self) -> BaseGraph:
        """Materialize back into a dict graph (inverse of :meth:`from_graph`)."""
        g: BaseGraph = DiGraph() if self.directed else Graph()
        g.add_vertices(self.verts)
        verts = self.verts
        for ui, vi, w in zip(self.edge_u, self.edge_v, self.edge_w):
            g.add_edge(verts[ui], verts[vi], w)
        return g

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self.verts)

    @property
    def num_edges(self) -> int:
        """Unique edge count (each undirected edge counted once)."""
        return len(self.edge_u)

    def out_items(self, v: int) -> Iterable[Tuple[int, float]]:
        """(neighbour index, weight) pairs of vertex index ``v``."""
        nbr, wt = self.nbr, self.wt
        for e in range(self.indptr[v], self.indptr[v + 1]):
            yield nbr[e], wt[e]

    def half_arrays_np(self):
        """NumPy mirrors ``(indptr, nbr, wt, eid, deg)`` of the half-edge CSR.

        Built lazily, cached on the snapshot. ``None`` when NumPy is
        unavailable. Index mirrors are int32 (half the memory traffic of
        the vectorized tree-extraction passes; a snapshot with 2³¹ half
        edges would not fit in RAM anyway); ``indptr`` stays int64 for
        offset arithmetic.
        """
        if _np is None:
            return None
        if self._half_np is None:
            indptr = _np.asarray(self.indptr, dtype=_np.int64)
            self._half_np = (
                indptr,
                _np.asarray(self.nbr, dtype=_np.int32),
                _np.asarray(self.wt, dtype=_np.float64),
                _np.asarray(self.eid, dtype=_np.int32),
                (indptr[1:] - indptr[:-1]).astype(_np.int32),
            )
        return self._half_np

    def scipy_kernels(self) -> Optional["SciPyGraphKernels"]:
        """Compiled batched-SSSP kernels for this snapshot, or ``None``.

        ``None`` when SciPy/NumPy are missing or the snapshot is empty.
        (csgraph honors explicitly-stored zero-weight edges, so zero
        weights need no special casing.) Cached on the snapshot.
        """
        if self._sp_kernels is None:
            if _sp_dijkstra is None or _np is None or self.num_vertices == 0:
                self._sp_kernels = False
            else:
                self._sp_kernels = SciPyGraphKernels(self)
        return self._sp_kernels or None

    # ------------------------------------------------------------------
    # Index-space kernels
    # ------------------------------------------------------------------
    #
    # All kernels accept an optional ``mask``: a length-n indexable of
    # truthy/falsy values; vertices with a falsy entry are treated as
    # deleted (the paper's G \ J survivor view). Distances use lists with
    # inf / -1 sentinels instead of dicts — the arrays double as the
    # settled-check that lets the heap carry bare (dist, index) pairs with
    # lazy deletion, no per-push tie-break counter needed.

    def dijkstra_idx(
        self,
        source: int,
        cutoff: Optional[float] = None,
        target: int = -1,
        mask: Optional[Sequence] = None,
    ) -> Tuple[List[float], List[int]]:
        """Array Dijkstra from vertex index ``source``.

        Returns ``(dist, settled_order)``: ``dist[i]`` is the tentative
        distance (``inf`` if unreached) and ``settled_order`` lists the
        vertex indices whose distance is final, in settle order — so
        callers of bounded queries touch O(|ball|) results, not O(n).
        With ``target >= 0`` the scan stops as soon as the target
        settles, mirroring the dict implementation — only settled
        entries are meaningful then.
        """
        n = len(self.verts)
        dist = [INF] * n
        settled = [False] * n
        order: List[int] = []
        if mask is not None and not mask[source]:
            return dist, order
        dist[source] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, source)]
        indptr, nbr, wt = self.indptr, self.nbr, self.wt
        push = heapq.heappush
        pop = heapq.heappop
        while heap:
            d, v = pop(heap)
            if settled[v]:
                continue  # stale heap entry
            settled[v] = True
            order.append(v)
            if v == target:
                break
            for e in range(indptr[v], indptr[v + 1]):
                u = nbr[e]
                if settled[u]:
                    continue
                if mask is not None and not mask[u]:
                    continue
                nd = d + wt[e]
                if nd < dist[u] and (cutoff is None or nd <= cutoff):
                    dist[u] = nd
                    push(heap, (nd, u))
        return dist, order

    def dijkstra_parents_idx(
        self,
        source: int,
        cutoff: Optional[float] = None,
        mask: Optional[Sequence] = None,
    ) -> Tuple[List[float], List[int], List[int]]:
        """Like :meth:`dijkstra_idx` but also returns a parent array (-1 = none)."""
        n = len(self.verts)
        dist = [INF] * n
        parent = [-1] * n
        settled = [False] * n
        order: List[int] = []
        if mask is not None and not mask[source]:
            return dist, parent, order
        dist[source] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, source)]
        indptr, nbr, wt = self.indptr, self.nbr, self.wt
        push = heapq.heappush
        pop = heapq.heappop
        while heap:
            d, v = pop(heap)
            if settled[v]:
                continue
            settled[v] = True
            order.append(v)
            for e in range(indptr[v], indptr[v + 1]):
                u = nbr[e]
                if settled[u]:
                    continue
                if mask is not None and not mask[u]:
                    continue
                nd = d + wt[e]
                if nd < dist[u] and (cutoff is None or nd <= cutoff):
                    dist[u] = nd
                    parent[u] = v
                    push(heap, (nd, u))
        return dist, parent, order

    def multi_source_dijkstra_idx(
        self,
        sources: Iterable[int],
        cutoff: Optional[float] = None,
        mask: Optional[Sequence] = None,
    ) -> Tuple[List[float], List[int]]:
        """Distances to the nearest of ``sources`` plus the owning source.

        Returns ``(dist, owner)`` where ``owner[i]`` is the source index
        that realizes ``dist[i]`` (-1 if unreached). One heap pass — the
        standard multi-source trick used by cluster decompositions.
        """
        n = len(self.verts)
        dist = [INF] * n
        owner = [-1] * n
        settled = [False] * n
        heap: List[Tuple[float, int]] = []
        for s in sources:
            if mask is not None and not mask[s]:
                continue
            if dist[s] > 0.0:
                dist[s] = 0.0
                owner[s] = s
                heap.append((0.0, s))
        heapq.heapify(heap)
        indptr, nbr, wt = self.indptr, self.nbr, self.wt
        push = heapq.heappush
        pop = heapq.heappop
        while heap:
            d, v = pop(heap)
            if settled[v]:
                continue
            settled[v] = True
            own = owner[v]
            for e in range(indptr[v], indptr[v + 1]):
                u = nbr[e]
                if settled[u]:
                    continue
                if mask is not None and not mask[u]:
                    continue
                nd = d + wt[e]
                if nd < dist[u] and (cutoff is None or nd <= cutoff):
                    dist[u] = nd
                    owner[u] = own
                    push(heap, (nd, u))
        return dist, owner

    def barrier_dijkstra_idx(
        self,
        source: int,
        barrier: Optional[Sequence] = None,
        mask: Optional[Sequence] = None,
    ) -> Tuple[List[float], List[int], List[int], List[int]]:
        """Dijkstra from ``source`` restricted by a per-vertex barrier.

        A vertex ``u != source`` is only relaxed to a tentative distance
        ``nd`` when ``nd < barrier[u]`` — the Thorup–Zwick cluster rule
        ``C(w) = {v : d(w, v) < d(A_{i+1}, v)}`` with ``barrier`` the
        distance-to-next-level array (``None`` = unrestricted, i.e. an
        all-``inf`` barrier). The source is never barrier-checked,
        matching the classical construction (``d(w, w) = 0``).

        Returns ``(dist, parent, parent_eid, order)``: tentative
        distances, shortest-path-tree parents (-1 = none), the edge id of
        each parent link (-1 = none), and the settled vertex indices in
        settle order. Only settled entries are meaningful; the tree edges
        of the cluster are ``(parent[v], v)`` over ``order[1:]``.
        """
        n = len(self.verts)
        dist = [INF] * n
        parent = [-1] * n
        parent_eid = [-1] * n
        settled = [False] * n
        order: List[int] = []
        if mask is not None and not mask[source]:
            return dist, parent, parent_eid, order
        dist[source] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, source)]
        indptr, nbr, wt, eid = self.indptr, self.nbr, self.wt, self.eid
        push = heapq.heappush
        pop = heapq.heappop
        while heap:
            d, v = pop(heap)
            if settled[v]:
                continue
            settled[v] = True
            order.append(v)
            for e in range(indptr[v], indptr[v + 1]):
                u = nbr[e]
                if settled[u]:
                    continue
                if mask is not None and not mask[u]:
                    continue
                nd = d + wt[e]
                if barrier is not None and nd >= barrier[u]:
                    continue
                if nd < dist[u]:
                    dist[u] = nd
                    parent[u] = v
                    parent_eid[u] = eid[e]
                    push(heap, (nd, u))
                elif nd == dist[u] and v < parent[u]:
                    # Canonical tie rule: among tight predecessors the
                    # smallest vertex index wins. Defined by distances
                    # alone, so every execution path (dict, list kernel,
                    # compiled batched SSSP) extracts the same tree.
                    parent[u] = v
                    parent_eid[u] = eid[e]
        return dist, parent, parent_eid, order

    def bfs_idx(
        self,
        source: int,
        cutoff: Optional[int] = None,
        mask: Optional[Sequence] = None,
    ) -> List[int]:
        """Hop distances from vertex index ``source`` (-1 = unreached)."""
        n = len(self.verts)
        dist = [-1] * n
        if mask is not None and not mask[source]:
            return dist
        dist[source] = 0
        queue = deque([source])
        indptr, nbr = self.indptr, self.nbr
        while queue:
            v = queue.popleft()
            d = dist[v]
            if cutoff is not None and d >= cutoff:
                continue
            for e in range(indptr[v], indptr[v + 1]):
                u = nbr[e]
                if dist[u] < 0 and (mask is None or mask[u]):
                    dist[u] = d + 1
                    queue.append(u)
        return dist

    def batched_bfs_idx(
        self,
        sources: Iterable[int],
        cutoff: Optional[int] = None,
        mask: Optional[Sequence] = None,
    ) -> Dict[int, List[int]]:
        """Hop-distance arrays for several sources in one call.

        The batch shares the CSR arrays (no per-source graph traversal
        setup); used by diameter sweeps and the distributed simulators.
        """
        return {s: self.bfs_idx(s, cutoff=cutoff, mask=mask) for s in sources}

    # ------------------------------------------------------------------
    # Survivor masking
    # ------------------------------------------------------------------

    def surviving_edge_ids(self, alive: Sequence) -> List[int]:
        """Edge ids whose *both* endpoints are alive under ``alive``.

        O(m); vectorized through NumPy when available. ``alive`` may be a
        list of bools or a NumPy bool array.
        """
        if _np is not None and self._edge_u_np is not None:
            alive_np = _np.asarray(alive, dtype=bool)
            ok = alive_np[self._edge_u_np] & alive_np[self._edge_v_np]
            return _np.nonzero(ok)[0].tolist()
        edge_u, edge_v = self.edge_u, self.edge_v
        return [
            e
            for e in range(len(edge_u))
            if alive[edge_u[e]] and alive[edge_v[e]]
        ]

    def filter_edge_ids(self, ids, alive: Sequence):
        """Subsequence of edge ids ``ids`` surviving the mask, order kept.

        This is the conversion loop's per-iteration work: ``ids`` is the
        weight-sorted id list, ``alive`` the survivor bitmask, and the
        result feeds the indexed greedy kernel directly. One vectorized
        O(m) pass with NumPy; a plain comprehension otherwise.
        """
        if _np is not None and self._edge_u_np is not None:
            ids_np = _np.asarray(ids, dtype=_np.int64)
            alive_np = _np.asarray(alive, dtype=bool)
            ok = alive_np[self._edge_u_np[ids_np]] & alive_np[self._edge_v_np[ids_np]]
            return ids_np[ok]
        edge_u, edge_v = self.edge_u, self.edge_v
        return [e for e in ids if alive[edge_u[e]] and alive[edge_v[e]]]

    def edge_id(self, u: Vertex, v: Vertex) -> int:
        """The edge id of ``(u, v)`` (orientation-free on undirected hosts).

        The ``(u_idx, v_idx) -> id`` table is built lazily once per
        snapshot; raises ``KeyError`` for absent edges.
        """
        if self._uv_eid is None:
            table: Dict[Tuple[int, int], int] = {}
            if self.directed:
                for e, (ui, vi) in enumerate(zip(self.edge_u, self.edge_v)):
                    table[(ui, vi)] = e
            else:
                for e, (ui, vi) in enumerate(zip(self.edge_u, self.edge_v)):
                    table[(ui, vi) if ui <= vi else (vi, ui)] = e
            self._uv_eid = table
        ui = self.index[u]
        vi = self.index[v]
        if not self.directed and ui > vi:
            ui, vi = vi, ui
        return self._uv_eid[(ui, vi)]

    def scenario_masks(self, scenario: FaultScenario):
        """Translate a :class:`FaultScenario` into ``(alive, edge_alive)``.

        Either mask is ``None`` when that axis is unmasked. Unknown
        vertices/edges raise ``KeyError`` — a scenario must refer to the
        host it was drawn from.
        """
        alive = None
        edge_alive = None
        if scenario.vertices:
            alive = [True] * self.num_vertices
            index = self.index
            for v in scenario.vertices:
                alive[index[v]] = False
        if scenario.edges:
            edge_alive = [True] * self.num_edges
            for u, v in scenario.edges:
                edge_alive[self.edge_id(u, v)] = False
        return alive, edge_alive

    def survivor_view(
        self, alive=None, *, edge_alive: Optional[Sequence] = None
    ) -> "SurvivorView":
        """O(m) masked view ``G \\ J`` — no arrays copied, no dict rebuilt.

        ``alive`` is a length-n vertex survivor mask, a
        :class:`FaultScenario` (translated via :meth:`scenario_masks`),
        or ``None`` (all vertices alive). ``edge_alive`` is an optional
        per-edge-id survivor mask, letting vertex- and edge-fault
        pipelines share one view type.
        """
        scenario = None
        if isinstance(alive, FaultScenario):
            if edge_alive is not None:
                raise ValueError(
                    "pass either a FaultScenario or explicit masks, not both"
                )
            scenario = alive
            alive, edge_alive = self.scenario_masks(scenario)
        return SurvivorView(self, alive, edge_alive=edge_alive,
                            scenario=scenario)

    def materialize_edge_ids(self, ids: Iterable[int]) -> BaseGraph:
        """Spanning subgraph holding exactly the edges in ``ids``.

        The bulk twin of repeated ``add_edge`` calls: all vertices are
        added, then the adjacency dicts are written directly (one bump of
        the mutation counter), which matters when a kernel path hands
        back thousands of chosen edge ids.
        """
        g: BaseGraph = DiGraph() if self.directed else Graph()
        g.add_vertices(self.verts)
        verts = self.verts
        edge_u, edge_v, edge_w = self.edge_u, self.edge_v, self.edge_w
        adj = g._adj
        count = 0
        if self.directed:
            pred = g._pred  # type: ignore[attr-defined]
            for e in ids:
                u = verts[edge_u[e]]
                v = verts[edge_v[e]]
                w = edge_w[e]
                if v not in adj[u]:
                    count += 1
                adj[u][v] = w
                pred[v][u] = w
        else:
            for e in ids:
                u = verts[edge_u[e]]
                v = verts[edge_v[e]]
                w = edge_w[e]
                if v not in adj[u]:
                    count += 1
                adj[u][v] = w
                adj[v][u] = w
        g._num_edges += count
        g._version += 1
        return g

    # ------------------------------------------------------------------
    # Vertex-space wrappers (used by the paths.py dispatch)
    # ------------------------------------------------------------------

    def dijkstra_dict(
        self,
        source: Vertex,
        cutoff: Optional[float] = None,
        target: Optional[Vertex] = None,
    ) -> Dict[Vertex, float]:
        """Dict-compatible Dijkstra: settled vertices mapped to distances."""
        src = self.index[source]
        tgt = self.index.get(target, -1) if target is not None else -1
        dist, order = self.dijkstra_idx(src, cutoff=cutoff, target=tgt)
        verts = self.verts
        return {verts[i]: dist[i] for i in order}

    def dijkstra_with_paths_dict(
        self, source: Vertex, cutoff: Optional[float] = None
    ) -> Tuple[Dict[Vertex, float], Dict[Vertex, Vertex]]:
        """Dict-compatible (distances, shortest-path-tree parents)."""
        src = self.index[source]
        dist, parent, order = self.dijkstra_parents_idx(src, cutoff=cutoff)
        verts = self.verts
        dist_d: Dict[Vertex, float] = {}
        parent_d: Dict[Vertex, Vertex] = {}
        for i in order:
            dist_d[verts[i]] = dist[i]
            if parent[i] >= 0:
                parent_d[verts[i]] = verts[parent[i]]
        return dist_d, parent_d

    def bfs_dict(
        self, source: Vertex, cutoff: Optional[int] = None
    ) -> Dict[Vertex, int]:
        """Dict-compatible hop distances."""
        dist = self.bfs_idx(self.index[source], cutoff=cutoff)
        verts = self.verts
        return {verts[i]: dist[i] for i in range(len(verts)) if dist[i] >= 0}


class SurvivorView:
    """A ``G \\ J`` view over a :class:`CSRGraph` defined by survivor masks.

    No arrays are copied: kernels run on the parent CSR with the masks
    applied per relaxation. ``alive`` masks vertices (``None`` = all
    alive); ``edge_alive`` masks unique edge ids (``None`` = all alive) —
    an edge survives iff both endpoints are alive *and* its id is alive,
    so vertex- and edge-fault scenarios share this one view type.
    ``surviving_edge_ids`` / ``half_alive`` / ``masked_weights`` are each
    computed lazily once (one vectorized O(m) pass with NumPy).
    """

    __slots__ = ("csr", "alive", "edge_alive", "scenario", "_edge_ids",
                 "_alive_np", "_half_ok_np", "_half_alive", "_masked_wt")

    def __init__(self, csr: CSRGraph, alive: Optional[Sequence] = None,
                 edge_alive: Optional[Sequence] = None, scenario=None):
        self.csr = csr
        self.alive = alive
        self.edge_alive = edge_alive
        #: The :class:`FaultScenario` this view was built from, if any
        #: (provenance only — the masks are authoritative).
        self.scenario = scenario
        self._edge_ids: Optional[List[int]] = None
        self._alive_np = None
        self._half_ok_np = None
        self._half_alive = None
        self._masked_wt = None

    @property
    def is_masked(self) -> bool:
        """False when the view is the whole host (no mask on either axis)."""
        return self.alive is not None or self.edge_alive is not None

    def alive_np(self):
        """NumPy bool mirror of the vertex mask (``None`` when unmasked)."""
        if self.alive is None or _np is None:
            return None
        if self._alive_np is None:
            self._alive_np = _np.asarray(self.alive, dtype=bool)
        return self._alive_np

    @property
    def num_surviving_vertices(self) -> int:
        if self.alive is None:
            return self.csr.num_vertices
        return sum(1 for a in self.alive if a)

    def surviving_vertex_indices(self) -> List[int]:
        """Alive vertex indices, in host vertex order."""
        if self.alive is None:
            return list(range(self.csr.num_vertices))
        return [i for i, a in enumerate(self.alive) if a]

    def surviving_edge_ids(self) -> List[int]:
        if self._edge_ids is None:
            csr = self.csr
            if self.alive is None and self.edge_alive is None:
                self._edge_ids = list(range(csr.num_edges))
            elif self.edge_alive is None:
                self._edge_ids = csr.surviving_edge_ids(self.alive)
            elif _np is not None and csr._edge_u_np is not None:
                ok = _np.asarray(self.edge_alive, dtype=bool)
                if self.alive is not None:
                    alive_np = self.alive_np()
                    ok = ok & alive_np[csr._edge_u_np] & alive_np[csr._edge_v_np]
                self._edge_ids = _np.nonzero(ok)[0].tolist()
            else:
                alive, edge_alive = self.alive, self.edge_alive
                edge_u, edge_v = csr.edge_u, csr.edge_v
                self._edge_ids = [
                    e for e in range(csr.num_edges)
                    if edge_alive[e]
                    and (alive is None or (alive[edge_u[e]] and alive[edge_v[e]]))
                ]
        return self._edge_ids

    @property
    def num_surviving_edges(self) -> int:
        return len(self.surviving_edge_ids())

    def filter_edge_ids(self, ids):
        """Subsequence of edge ids ``ids`` surviving both masks, order kept.

        The per-iteration work of the conversion loops: ``ids`` is a
        precomputed (e.g. weight-sorted) id list and the result feeds the
        indexed greedy kernel directly.
        """
        csr = self.csr
        if self.alive is None and self.edge_alive is None:
            return ids
        if self.edge_alive is None:
            return csr.filter_edge_ids(ids, self.alive)
        if _np is not None and csr._edge_u_np is not None:
            ids_np = _np.asarray(ids, dtype=_np.int64)
            ok = _np.asarray(self.edge_alive, dtype=bool)[ids_np]
            if self.alive is not None:
                alive_np = self.alive_np()
                ok = (ok & alive_np[csr._edge_u_np[ids_np]]
                      & alive_np[csr._edge_v_np[ids_np]])
            return ids_np[ok]
        alive, edge_alive = self.alive, self.edge_alive
        edge_u, edge_v = csr.edge_u, csr.edge_v
        return [
            e for e in ids
            if edge_alive[e]
            and (alive is None or (alive[edge_u[e]] and alive[edge_v[e]]))
        ]

    def _half_ok(self):
        """NumPy bool per half-edge slot (``None`` = nothing masked)."""
        if not self.is_masked or _np is None:
            return None
        if self._half_ok_np is None:
            csr = self.csr
            _indptr, nbr, _wt, eid, deg = csr.half_arrays_np()
            ok = None
            if self.alive is not None:
                alive_np = self.alive_np()
                src = _np.repeat(
                    _np.arange(csr.num_vertices, dtype=_np.int64), deg
                )
                ok = alive_np[src] & alive_np[nbr]
            if self.edge_alive is not None:
                edge_ok = _np.asarray(self.edge_alive, dtype=bool)[eid]
                ok = edge_ok if ok is None else ok & edge_ok
            self._half_ok_np = ok
        return self._half_ok_np

    def half_alive(self) -> Optional[List[bool]]:
        """Per-half-edge-slot survivor list (``None`` = nothing masked).

        Slot ``p`` is alive iff its source vertex, target vertex, and
        edge id all survive — the mask the round engine consults when
        scattering broadcasts. A plain list, because the engine reads it
        with scalar indexing inside interpreted loops.
        """
        if not self.is_masked:
            return None
        if self._half_alive is None:
            ok = self._half_ok()
            if ok is not None:
                self._half_alive = ok.tolist()
            else:
                csr = self.csr
                alive, edge_alive = self.alive, self.edge_alive
                indptr, nbr, eid = csr.indptr, csr.nbr, csr.eid
                out = [True] * len(nbr)
                for v in range(csr.num_vertices):
                    v_ok = alive is None or alive[v]
                    for p in range(indptr[v], indptr[v + 1]):
                        out[p] = bool(
                            v_ok
                            and (alive is None or alive[nbr[p]])
                            and (edge_alive is None or edge_alive[eid[p]])
                        )
                self._half_alive = out
        return self._half_alive

    def masked_weights(self):
        """Half-edge weight vector with ``+inf`` on dead slots.

        ``None`` when the view is unmasked (callers then use the
        snapshot's base weights) or NumPy is unavailable. An infinite
        edge can never lie on a finite shortest path, so handing this to
        :class:`SciPyGraphKernels` runs any distance pass on the
        survivor subgraph without touching the index arrays.
        """
        ok = self._half_ok()
        if ok is None:
            return None
        if self._masked_wt is None:
            _indptr, _nbr, wt, _eid, _deg = self.csr.half_arrays_np()
            data = wt.copy()
            data[~ok] = _np.inf
            self._masked_wt = data
        return self._masked_wt

    def dijkstra_idx(self, source: int, cutoff=None, target: int = -1):
        if self.edge_alive is not None:
            raise ValueError(
                "dijkstra_idx on an edge-masked view is not supported; "
                "use masked_weights() with the SciPy kernels"
            )
        return self.csr.dijkstra_idx(
            source, cutoff=cutoff, target=target, mask=self.alive
        )

    def bfs_idx(self, source: int, cutoff=None):
        if self.edge_alive is not None:
            raise ValueError(
                "bfs_idx on an edge-masked view is not supported; "
                "use masked_weights() with the SciPy kernels"
            )
        return self.csr.bfs_idx(source, cutoff=cutoff, mask=self.alive)

    def to_graph(self) -> BaseGraph:
        """Materialize the surviving subgraph as a dict graph.

        With a vertex mask, dead vertices are dropped (the induced
        subgraph ``G \\ J``); with only an edge mask, every vertex is
        retained — matching ``BaseGraph.edge_subgraph``, since a spanner
        must span every vertex.
        """
        csr = self.csr
        g: BaseGraph = DiGraph() if csr.directed else Graph()
        alive = self.alive
        if alive is None:
            g.add_vertices(csr.verts)
        else:
            g.add_vertices(v for i, v in enumerate(csr.verts) if alive[i])
        verts = csr.verts
        for e in self.surviving_edge_ids():
            g.add_edge(verts[csr.edge_u[e]], verts[csr.edge_v[e]], csr.edge_w[e])
        return g


def multi_arange(starts, counts):
    """Vectorized ``concatenate([arange(s, s + c) for s, c in zip(...)])``.

    The standard NumPy "multi-arange" trick; used to gather the incident
    half-edge slices of a member set in one C pass.
    """
    total = int(counts.sum())
    if total == 0:
        return _np.empty(0, dtype=_np.int64)
    out = _np.ones(total, dtype=_np.int64)
    out[0] = starts[0]
    boundaries = counts.cumsum()
    out[boundaries[:-1]] = starts[1:] - (starts[:-1] + counts[:-1]) + 1
    return out.cumsum()


class SciPyGraphKernels:
    """Batched shortest-path kernels over one snapshot, compiled via SciPy.

    ``scipy.sparse.csgraph.dijkstra`` runs the same relaxation recurrence
    as the dict implementations, in C. Each final distance is the minimum
    over the same set of IEEE-double path sums, so distances are
    *bit-identical* to the dict Dijkstras — which is what lets the
    clustering spanners define their outputs distance-locally and stay
    edge-set-identical across execution paths.

    The snapshot's half-edge structure is reused for every call; variant
    weight vectors (Johnson-primed levels, fault masks) share the index
    arrays and only swap the data vector. Fault masking sets the weights
    of every half-edge incident to a faulted vertex to ``+inf`` — an
    infinite edge can never lie on a finite shortest path, and SciPy
    propagates inf exactly like the dict implementations treat absent
    vertices.
    """

    __slots__ = ("csr", "base_data", "_indices32", "_indptr32", "_h_src", "_twin", "_in_pos_ptr", "_in_pos")

    def __init__(self, csr: CSRGraph):
        self.csr = csr
        indptr, nbr, wt, _eid, _deg = csr.half_arrays_np()
        # csgraph works on int32 index arrays; convert once, not per call.
        self._indices32 = nbr.astype(_np.int32)
        self._indptr32 = indptr.astype(_np.int32)
        self.base_data = wt
        self._h_src = None
        self._twin = None
        self._in_pos_ptr = None
        self._in_pos = None

    def matrix(self, data=None):
        """A csgraph matrix sharing the snapshot's structure.

        ``data`` defaults to the true weights; pass a variant vector
        (primed weights, fault-masked weights) to reuse the structure.
        Undirected snapshots store both half-edges, so the matrix is
        always traversed in directed mode.
        """
        n = self.csr.num_vertices
        return _sp_csr_matrix(
            (self.base_data if data is None else data, self._indices32, self._indptr32),
            shape=(n, n),
        )

    def multi_source(self, sources: Sequence[int], data=None):
        """Distance to the nearest of ``sources`` as a float array."""
        return _sp_dijkstra(
            self.matrix(data), directed=True, indices=list(sources), min_only=True
        )

    def sssp_rows(self, sources: Sequence[int], limit: float = INF, data=None):
        """Full SSSP rows for each source; entries beyond ``limit`` are inf."""
        return _sp_dijkstra(
            self.matrix(data), directed=True, indices=list(sources), limit=limit
        )

    def half_sources(self):
        """Source vertex of each half-edge (``repeat(arange(n), deg)``)."""
        if self._h_src is None:
            _indptr, _nbr, _wt, _eid, deg = self.csr.half_arrays_np()
            self._h_src = _np.repeat(
                _np.arange(self.csr.num_vertices, dtype=_np.int32), deg
            )
        return self._h_src

    def twin_halves(self):
        """Position of each half-edge's reverse twin (undirected only).

        ``twin[e]`` is the storage position of the opposite half of the
        same undirected edge; killing or masking an edge becomes two
        scatter writes into a half-level aliveness array instead of an
        edge-id gather per phase.
        """
        if self._twin is None:
            _indptr, _nbr, _wt, eid, _deg = self.csr.half_arrays_np()
            order = _np.argsort(eid, kind="stable")
            twin = _np.empty(len(order), dtype=_np.int64)
            twin[order[0::2]] = order[1::2]
            twin[order[1::2]] = order[0::2]
            self._twin = twin
        return self._twin

    def _in_positions(self):
        """Half-edge positions grouped by *target* vertex (lazy, cached)."""
        if self._in_pos is None:
            _indptr, nbr, _wt, _eid, _deg = self.csr.half_arrays_np()
            self._in_pos = _np.argsort(nbr, kind="stable")
            counts = _np.bincount(nbr, minlength=self.csr.num_vertices)
            ptr = _np.zeros(self.csr.num_vertices + 1, dtype=_np.int64)
            _np.cumsum(counts, out=ptr[1:])
            self._in_pos_ptr = ptr
        return self._in_pos_ptr, self._in_pos

    def incident_half_positions(self, vertex_indices: Sequence[int]):
        """Positions of every half-edge with an endpoint in ``vertex_indices``.

        Writing ``inf`` into a data vector at these positions removes the
        vertices from the traversal — the survivor-mask operation of the
        CLPR resampling loop.
        """
        indptr, _nbr, _wt, _eid, deg = self.csr.half_arrays_np()
        faults = _np.asarray(list(vertex_indices), dtype=_np.int64)
        if faults.size == 0:
            return _np.empty(0, dtype=_np.int64)
        out_pos = multi_arange(indptr[faults], deg[faults])
        in_ptr, in_pos = self._in_positions()
        rev_pos = multi_arange(in_ptr[faults], in_ptr[faults + 1] - in_ptr[faults])
        return _np.concatenate([out_pos, in_pos[rev_pos]])


class BFSBalls:
    """Reusable truncated-radius BFS over one :class:`CSRGraph`.

    The padded-decomposition sampler (Lemma 3.7) floods a hop-ball from
    *every* vertex; allocating a fresh length-n distance array per source
    would make that O(n²) regardless of ball size. This helper keeps
    generation-stamped scratch arrays so each :meth:`ball` call costs
    O(|ball| + edges(ball)) with no clears between calls.
    """

    __slots__ = ("csr", "_stamp", "_dist", "_gen")

    def __init__(self, csr: CSRGraph):
        self.csr = csr
        n = csr.num_vertices
        self._stamp = [0] * n
        self._dist = [0] * n
        self._gen = 0

    def ball(self, source: int, radius: int) -> List[int]:
        """Vertex indices within ``radius`` hops of ``source``, in BFS order.

        Always contains ``source`` itself (radius 0 is the singleton).
        """
        self._gen += 1
        gen = self._gen
        stamp, dist = self._stamp, self._dist
        stamp[source] = gen
        dist[source] = 0
        members = [source]
        if radius <= 0:
            return members
        csr = self.csr
        indptr, nbr = csr.indptr, csr.nbr
        head = 0
        while head < len(members):
            v = members[head]
            head += 1
            d = dist[v]
            if d >= radius:
                continue
            for e in range(indptr[v], indptr[v + 1]):
                u = nbr[e]
                if stamp[u] != gen:
                    stamp[u] = gen
                    dist[u] = d + 1
                    members.append(u)
        return members


# ---------------------------------------------------------------------------
# Method dispatch
# ---------------------------------------------------------------------------

#: The accepted values of the ``method=`` kwarg shared by the spanner /
#: decomposition constructors (greedy, Thorup–Zwick, Baswana–Sen, the CLPR
#: baseline, and the padded-decomposition sampler). ``"compiled"`` is the
#: optional C-backend tier (see :mod:`repro.compiled`) served only by
#: algorithms whose registry row sets ``compiled_path``.
METHODS = ("auto", "csr", "dict", "compiled")


def resolve_method(
    method: str,
    num_vertices: int,
    *,
    directed: bool = False,
    directed_csr: bool = True,
    compiled_path: bool = False,
) -> str:
    """The one dispatch rule behind every shared ``method=`` kwarg.

    The accepted values are exactly :data:`METHODS` —
    ``"auto"``, ``"csr"``, ``"dict"``, and ``"compiled"``:

    * ``"dict"`` — always run the reference dict-of-dict implementation
      (the pinned reference every other tier is property-tested against).
    * ``"csr"`` — always run the CSR fast path (even on tiny graphs).
    * ``"compiled"`` — run the C-backend kernels
      (:mod:`repro.compiled`). Raises ``ValueError`` when the algorithm
      has no compiled kernel (``compiled_path=False``) and
      :class:`repro.errors.CompiledBackendUnavailable` when the backend
      cannot build/load — an explicit request never downgrades silently.
    * ``"auto"`` — the compiled tier iff the caller has one
      (``compiled_path=True``), the backend is available, and the graph
      has at least :data:`MIN_DISPATCH_VERTICES` vertices; otherwise the
      CSR path at the same size threshold; below it the snapshot
      overhead dominates and the dict implementations win.

    ``directed``/``directed_csr`` describe the *caller's* fast path.
    Most consumers ride the directed CSR snapshot natively (the greedy
    indexed kernel keeps a reverse adjacency, the Theorem 2.1 engine and
    the path queries traverse out-edges) and can leave the defaults
    alone. A fast path that is genuinely undirected-only — TZ and
    CLPR need reverse traversal the directed snapshot does not store —
    passes ``directed=graph.directed, directed_csr=False``: ``"auto"``
    then resolves to ``"dict"`` on digraphs, and an explicit ``"csr"``
    (or ``"compiled"``) raises instead of silently downgrading, so a
    caller who pinned the fast path learns the truth instead of
    benchmarking the wrong kernel.

    All tiers of every algorithm are pinned output-identical (same RNG
    stream, same edge sets / cluster assignments) by the property tests
    in ``tests/test_algorithms_csr.py`` and ``tests/test_compiled.py``,
    so the choice is performance-only.
    """
    if method not in METHODS:
        raise ValueError(
            f"method must be one of {METHODS} "
            f"('auto' = size/backend-based dispatch, 'csr' = the CSR "
            f"fast path, 'dict' = the pinned reference, 'compiled' = "
            f"the optional C backend), got {method!r}"
        )
    if directed and not directed_csr:
        if method in ("csr", "compiled"):
            raise ValueError(
                f"method={method!r} requested but this pipeline's fast "
                "kernels are undirected-only (the directed CSR snapshot "
                "stores out-edges only); use method='auto'/'dict' or an "
                "undirected host"
            )
        return "dict"
    if method == "compiled":
        if not compiled_path:
            raise ValueError(
                "method='compiled' requested but this algorithm has no "
                "compiled kernel (registry capability compiled_path is "
                "false); use method='auto', 'csr', or 'dict'"
            )
        from ..compiled import require_compiled

        require_compiled()  # raises CompiledBackendUnavailable if absent
        return "compiled"
    if method == "auto":
        if num_vertices < MIN_DISPATCH_VERTICES:
            return "dict"
        if compiled_path:
            from ..compiled import compiled_available

            if compiled_available():
                return "compiled"
        return "csr"
    return method


# ---------------------------------------------------------------------------
# Cached snapshots
# ---------------------------------------------------------------------------


def snapshot(graph: BaseGraph) -> CSRGraph:
    """Return the CSR snapshot of ``graph``, cached by mutation counter.

    The cache lives on the graph instance (``_csr_cache``); any mutation
    bumps ``_version`` and invalidates it, so a stale snapshot is never
    served. Building is O(n + m) and happens at most once per graph state.
    """
    version = getattr(graph, "_version", None)
    cache = getattr(graph, "_csr_cache", None)
    if cache is not None and cache[0] == version:
        return cache[1]
    snap = CSRGraph.from_graph(graph)
    graph._csr_cache = (version, snap)  # type: ignore[attr-defined]
    return snap


def maybe_snapshot(graph: BaseGraph, build: bool = True) -> Optional[CSRGraph]:
    """Snapshot for dispatch: None when the dict path is the better bet.

    Small graphs never dispatch. With ``build=False`` only an
    already-cached, still-valid snapshot is returned — callers use this
    for *bounded* queries (cutoff / early-target), where the dict
    implementation explores a small ball and an O(n + m) snapshot build
    per query would be a net loss in mutate-query loops; a bounded query
    still rides the CSR when some earlier global query paid for the
    snapshot.
    """
    if graph.num_vertices < MIN_DISPATCH_VERTICES:
        return None
    if not build:
        cache = getattr(graph, "_csr_cache", None)
        if cache is None or cache[0] != getattr(graph, "_version", None):
            return None
        return cache[1]
    return snapshot(graph)


def invalidate_snapshot(graph: BaseGraph) -> None:
    """Drop ``graph``'s cached CSR snapshot, releasing its arrays.

    Correctness never needs this — every mutator bumps ``_version`` and
    the cache checks it — but a long-lived owner of a mutating graph
    (the serving layer) calls it to free a snapshot that will never be
    valid again, instead of keeping the stale O(n + m) arrays pinned
    until the next global query happens to rebuild them.
    """
    if getattr(graph, "_csr_cache", None) is not None:
        graph._csr_cache = None  # type: ignore[attr-defined]
