"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors (``TypeError``, ``KeyError`` from user code,
and so on).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CompiledBackendUnavailable(ReproError):
    """``method="compiled"`` was requested but the C backend cannot serve.

    The message names the concrete obstacle (no C compiler on ``PATH``,
    a failed build, or the ``REPRO_DISABLE_COMPILED`` switch) and the
    working alternatives; ``method="auto"`` never raises this — it falls
    back to the interpreted tiers silently.
    """


class GraphError(ReproError):
    """Structural graph errors (missing vertices, duplicate edges, ...)."""


class VertexNotFound(GraphError):
    """A referenced vertex is not present in the graph."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} is not in the graph")
        self.vertex = vertex


class EdgeNotFound(GraphError):
    """A referenced edge is not present in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.u = u
        self.v = v


class NegativeWeightError(GraphError):
    """An edge weight is negative where nonnegative weights are required."""


class DisconnectedError(GraphError):
    """No path exists between two vertices where one was required."""


class SpannerError(ReproError):
    """Errors raised by spanner construction algorithms."""


class InvalidStretch(SpannerError):
    """The requested stretch parameter is outside the algorithm's domain."""


class FaultToleranceError(ReproError):
    """Errors from fault-tolerant constructions and verifiers."""


class LPError(ReproError):
    """Errors from the linear-programming substrate."""


class InfeasibleLP(LPError):
    """The linear program has no feasible solution."""


class UnboundedLP(LPError):
    """The linear program's objective is unbounded."""


class SolverLimit(LPError):
    """An iteration or cut-round limit was exhausted before convergence."""


class RoundingError(ReproError):
    """A randomized rounding scheme failed to produce a valid solution."""


class SpecError(ReproError):
    """Errors raised by the typed spec / session front door."""


class InvalidSpec(SpecError):
    """A :class:`repro.spec.SpannerSpec` field (or spec document) is invalid.

    The message always names the offending field and the accepted values,
    so a failing sweep shard can be fixed from the error alone.
    """


class RegistryError(SpecError):
    """Errors from the algorithm registry (duplicate or malformed entries)."""


class UnknownAlgorithm(RegistryError):
    """A spec references an algorithm name that is not registered."""

    def __init__(self, name: object, available=()) -> None:
        hint = ", ".join(sorted(available)) if available else "none registered"
        super().__init__(
            f"unknown algorithm {name!r}; available algorithms: {hint}"
        )
        self.name = name
        self.available = tuple(sorted(available))


class UnknownHostGenerator(RegistryError):
    """A host spec references a generator name that is not registered."""

    def __init__(self, name: object, available=()) -> None:
        hint = ", ".join(sorted(available)) if available else "none registered"
        super().__init__(
            f"unknown host generator {name!r}; available generators: {hint}"
        )
        self.name = name
        self.available = tuple(sorted(available))


class SweepError(ReproError):
    """A sharded sweep failed in a way naming the shard and the cause.

    Raised by :func:`repro.sweep.run_sweep` when a shard fails twice
    (once in its worker process, once on the retry) or when a persisted
    shard envelope is unreadable — instead of surfacing a bare
    ``BrokenProcessPool`` or ``JSONDecodeError`` that says nothing about
    which shard, spec, or file is at fault.
    """


class LeaseError(SweepError):
    """A scheduler lease operation failed (claim race, missing or foreign
    lease, malformed lease file).

    Raised by :mod:`repro.sched.lease`; ordinary claim contention is *not*
    an error (claims return ``None`` when another worker holds the shard) —
    this class marks protocol violations such as releasing a lease the
    caller does not own.
    """


class ShardQuarantined(SweepError):
    """One or more shards of a scheduled sweep are quarantined.

    A shard lands in the scheduler's ``failed/`` ledger after
    ``max_attempts`` failures (recorded across workers, with the captured
    exceptions); merging such a sweep raises this error naming every
    quarantined shard instead of reporting partial coverage as missing
    indices. The ledger documents ride on :attr:`ledger`.
    """

    def __init__(self, message: str, ledger=()) -> None:
        super().__init__(message)
        self.ledger = tuple(ledger)


class DistributedError(ReproError):
    """Errors raised by the LOCAL-model simulator or distributed algorithms."""


class ProtocolViolation(DistributedError):
    """A node algorithm violated the simulator's protocol contract."""
