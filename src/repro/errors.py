"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors (``TypeError``, ``KeyError`` from user code,
and so on).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Structural graph errors (missing vertices, duplicate edges, ...)."""


class VertexNotFound(GraphError):
    """A referenced vertex is not present in the graph."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} is not in the graph")
        self.vertex = vertex


class EdgeNotFound(GraphError):
    """A referenced edge is not present in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.u = u
        self.v = v


class NegativeWeightError(GraphError):
    """An edge weight is negative where nonnegative weights are required."""


class DisconnectedError(GraphError):
    """No path exists between two vertices where one was required."""


class SpannerError(ReproError):
    """Errors raised by spanner construction algorithms."""


class InvalidStretch(SpannerError):
    """The requested stretch parameter is outside the algorithm's domain."""


class FaultToleranceError(ReproError):
    """Errors from fault-tolerant constructions and verifiers."""


class LPError(ReproError):
    """Errors from the linear-programming substrate."""


class InfeasibleLP(LPError):
    """The linear program has no feasible solution."""


class UnboundedLP(LPError):
    """The linear program's objective is unbounded."""


class SolverLimit(LPError):
    """An iteration or cut-round limit was exhausted before convergence."""


class RoundingError(ReproError):
    """A randomized rounding scheme failed to produce a valid solution."""


class DistributedError(ReproError):
    """Errors raised by the LOCAL-model simulator or distributed algorithms."""


class ProtocolViolation(DistributedError):
    """A node algorithm violated the simulator's protocol contract."""
