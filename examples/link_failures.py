#!/usr/bin/env python
"""Scenario: link (edge) failures instead of node failures.

The paper analyses vertex faults — the harder model — but its conversion
handles *edge* faults verbatim (Theorem 2.3's sampling is already phrased
per edge). This example builds an overlay of an ISP-style topology that
tolerates any ``r`` simultaneous link cuts:

1. generate a random-geometric "fiber map" (nodes = POPs, edges = fibers
   with Euclidean lengths);
2. build an r-edge-fault-tolerant 3-spanner with the edge-fault
   conversion;
3. verify exhaustively against every set of up to r cut links, and show
   the Lemma 3.1-analogue check on a directed unit-length variant.

Run:  python examples/link_failures.py
"""

from __future__ import annotations

from repro.analysis import print_table
from repro.core import (
    edge_fault_tolerant_spanner,
    is_edge_fault_tolerant_spanner,
    is_edge_ft_2spanner,
    sampled_edge_fault_check,
)
from repro.graph import gnp_random_digraph, random_geometric_graph
from repro.two_spanner import approximate_ft2_spanner


def main() -> None:
    r = 1
    fibers = random_geometric_graph(22, 0.45, seed=12)
    print(f"fiber map: n={fibers.num_vertices} POPs, m={fibers.num_edges} links")

    overlay = edge_fault_tolerant_spanner(fibers, k=3, r=r, seed=13)
    exhaustive = is_edge_fault_tolerant_spanner(overlay.spanner, fibers, 3, r)
    sampled = sampled_edge_fault_check(
        overlay.spanner, fibers, 3, r, trials=100, seed=14
    )
    print_table(
        ["quantity", "value"],
        [
            ["overlay links", overlay.num_edges],
            ["of fiber map", f"{100 * overlay.num_edges / fibers.num_edges:.0f}%"],
            ["oversampling iterations", overlay.stats.iterations],
            [f"exhaustive over all <= {r} link cuts", exhaustive],
            ["sampled check (100 trials)", sampled],
        ],
        title=f"r={r} edge-fault-tolerant 3-spanner of the fiber map",
    )

    # The k = 2 story: the Lemma 3.1 analogue applies unchanged to link
    # failures, so the Theorem 3.3 pipeline gives link-cut tolerance too.
    mesh = gnp_random_digraph(12, 0.5, seed=15)
    result = approximate_ft2_spanner(mesh, r=2, seed=16)
    print(
        "directed mesh, r=2 via Theorem 3.3: cost "
        f"{result.cost:.0f} (LP {result.lp_objective:.1f}); "
        f"edge-fault valid: {is_edge_ft_2spanner(result.spanner, mesh, 2)}"
    )


if __name__ == "__main__":
    main()
