#!/usr/bin/env python
"""Scenario: link (edge) failures instead of node failures.

The paper analyses vertex faults — the harder model — but its conversion
handles *edge* faults verbatim (Theorem 2.3's sampling is already phrased
per edge). This example builds an overlay of an ISP-style topology that
tolerates any ``r`` simultaneous link cuts:

1. generate a random-geometric "fiber map" (nodes = POPs, edges = fibers
   with Euclidean lengths);
2. build an r-edge-fault-tolerant 3-spanner through the typed front door
   (``SpannerSpec`` with ``FaultModel.edge(r)`` → the registry's
   ``theorem21-edge`` pipeline);
3. verify exhaustively against every set of up to r cut links, and show
   the Lemma 3.1-analogue check on a directed unit-length variant.

Run:  python examples/link_failures.py
"""

from __future__ import annotations

from repro import FaultModel, Session, SpannerSpec
from repro.analysis import print_table
from repro.core import is_edge_ft_2spanner
from repro.graph import gnp_random_digraph, random_geometric_graph


def main() -> None:
    r = 1
    fibers = random_geometric_graph(22, 0.45, seed=12)
    print(f"fiber map: n={fibers.num_vertices} POPs, m={fibers.num_edges} links")

    session = Session()
    overlay = session.build(
        SpannerSpec(
            "theorem21-edge", stretch=3, faults=FaultModel.edge(r), seed=13
        ),
        graph=fibers,
    )
    exhaustive = session.verify(overlay, graph=fibers, mode="exhaustive")
    sampled = session.verify(
        overlay, graph=fibers, mode="sampled", trials=100, seed=14
    )
    print_table(
        ["quantity", "value"],
        [
            ["overlay links", overlay.size],
            ["of fiber map", f"{100 * overlay.size / fibers.num_edges:.0f}%"],
            ["oversampling iterations", overlay.stats["iterations"]],
            [f"exhaustive over all <= {r} link cuts", exhaustive],
            ["sampled check (100 trials)", sampled],
        ],
        title=f"r={r} edge-fault-tolerant 3-spanner of the fiber map",
    )

    # The k = 2 story: the Lemma 3.1 analogue applies unchanged to link
    # failures, so the Theorem 3.3 pipeline gives link-cut tolerance too.
    mesh = gnp_random_digraph(12, 0.5, seed=15)
    result = session.build(
        SpannerSpec(
            "ft2-approx", stretch=2, faults=FaultModel.vertex(2), seed=16
        ),
        graph=mesh,
    )
    print(
        "directed mesh, r=2 via Theorem 3.3: cost "
        f"{result.stats['cost']:.0f} (LP {result.stats['lp_objective']:.1f}); "
        f"edge-fault valid: {is_edge_ft_2spanner(result.spanner, mesh, 2)}"
    )


if __name__ == "__main__":
    main()
