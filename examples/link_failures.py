#!/usr/bin/env python
"""Scenario: surviving link (edge) failures — statically, then live.

The paper analyses vertex faults — the harder model — but its machinery
handles *link* (edge) faults verbatim. This example shows both views of
that threat model on an ISP-style topology:

1. **Static overlay.** Build an r-edge-fault-tolerant 3-spanner of a
   random-geometric "fiber map" (nodes = POPs, edges = fibers) through
   the typed front door (``SpannerSpec`` with ``FaultModel.edge(r)`` →
   the registry's ``theorem21-edge`` pipeline) and verify it
   exhaustively against every set of up to ``r`` cut links.

2. **Live service.** A spanner built once only survives the cuts it was
   *sized* for; :class:`repro.serve.SpannerService` keeps one valid
   while fibers actually fail. A :class:`~repro.serve.ChaosInjector`
   cuts links — adversarially, aiming at the overlay's own edges — and
   the tiered repair engine (patch → region → full) heals the Lemma 3.1
   damage. Run with the lazy policy, the service *degrades gracefully*:
   reads answered from a damaged overlay are flagged ``degraded``, and
   one ``repair()`` restores health.

Run:  python examples/link_failures.py
"""

from __future__ import annotations

from repro import FaultModel, Session, SpannerSpec
from repro.analysis import print_table
from repro.serve import (
    ChaosInjector,
    Operation,
    RepairPolicy,
    SpannerService,
    WorkloadGenerator,
    read_write_weights,
)
from repro.graph import random_geometric_graph


def static_overlay(fibers, r: int) -> None:
    session = Session()
    overlay = session.build(
        SpannerSpec(
            "theorem21-edge", stretch=3, faults=FaultModel.edge(r), seed=13
        ),
        graph=fibers,
    )
    exhaustive = session.verify(overlay, graph=fibers, mode="exhaustive")
    print_table(
        ["quantity", "value"],
        [
            ["overlay links", overlay.size],
            ["of fiber map", f"{100 * overlay.size / fibers.num_edges:.0f}%"],
            ["oversampling iterations", overlay.stats["iterations"]],
            [f"exhaustive over all <= {r} link cuts", exhaustive],
        ],
        title=f"static r={r} edge-fault-tolerant 3-spanner of the fiber map",
    )


def live_service(fibers, r: int) -> None:
    # Eager (default) policy: a mixed day of traffic — mostly distance
    # queries, some fiber build-out and decommissioning — followed by an
    # adversarial burst of link cuts. Every answer comes from a valid
    # spanner; the tier histogram shows repairs stayed local.
    service = SpannerService(fibers.copy(), r=r, seed=0)
    traffic = WorkloadGenerator(
        fibers, seed=7, weights=read_write_weights(0.9)
    ).generate(200)
    chaos = ChaosInjector(seed=12, adversarial=True)
    traffic += chaos.edge_burst(service.host, 8, spanner=service.spanner)
    results = service.apply_all(traffic)
    assert service.is_valid()
    summary = service.summary()
    degraded = sum(1 for res in results if res.health == "degraded")
    print_table(
        ["quantity", "value"],
        [
            ["ops applied", summary["ops_applied"]],
            ["adversarial link cuts", 8],
            ["repair tiers", summary["stats"]["tiers"]],
            ["repaired links", summary["stats"]["repaired_edges"]],
            ["degraded answers", degraded],
            ["overlay valid at end", service.is_valid()],
        ],
        title="eager service: traffic + adversarial cuts, healed in-stream",
    )

    # Lazy policy: repairs are deferred, so the same burst leaves the
    # overlay damaged and reads honestly report it — the graceful
    # degradation contract. A single repair() then restores health.
    lazy = SpannerService(
        fibers.copy(), r=r, policy=RepairPolicy.lazy(), seed=0
    )
    burst = ChaosInjector(seed=12, adversarial=True).edge_burst(
        lazy.host, 8, spanner=lazy.spanner
    )
    burst_results = lazy.apply_all(burst)
    probes = list(lazy.host.vertices())[:4]
    reads = [
        Operation("QUERY_DIST", {"u": probes[0], "v": probes[-1]}),
        Operation("READ_NBRS", {"v": probes[1]}),
    ]
    read_results = lazy.apply_all(reads)
    flagged = [res.health for res in read_results]
    tier = lazy.repair()
    print_table(
        ["quantity", "value"],
        [
            ["link cuts applied", len(burst)],
            ["peak Lemma 3.1 damage",
             max(res.damage for res in burst_results)],
            ["reads while damaged", f"{flagged} (never silently healthy)"],
            ["repair() tier", tier],
            ["overlay valid after repair", lazy.is_valid()],
        ],
        title="lazy service: degrade under the burst, one repair() to heal",
    )


def main() -> None:
    r = 1
    fibers = random_geometric_graph(22, 0.45, seed=12)
    print(
        f"fiber map: n={fibers.num_vertices} POPs, "
        f"m={fibers.num_edges} links"
    )
    static_overlay(fibers, r)
    live_service(fibers, r)


if __name__ == "__main__":
    main()
