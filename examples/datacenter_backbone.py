#!/usr/bin/env python
"""Scenario: a sparse fault-tolerant backbone for a DCell datacenter fabric.

The motivating application of fault-tolerant spanners in the paper is
distributed systems: keep a *sparse* overlay such that even after some
machines fail, the overlay still approximates the surviving network's
distances. This example:

1. materializes a real server-centric datacenter topology — DCell_1(7),
   56 servers wired as 8 cliques of 7 plus one inter-cell link per
   server pair of cells — from a typed :class:`repro.hosts.HostSpec`
   (the same spec a sweep plan or another machine would rebuild
   byte-identically);
2. extracts an r-fault-tolerant 3-spanner backbone with the Theorem 2.1
   conversion;
3. kills random machine sets and measures route-length inflation on the
   backbone versus the full fabric, and compares against a *non*-fault-
   tolerant greedy spanner, which degrades badly under the same faults.

Run:  python examples/datacenter_backbone.py
"""

from __future__ import annotations

import math

from repro import (
    HostSpec,
    Session,
    SpannerSpec,
    fault_tolerant_spanner_until_valid,
)
from repro.analysis import print_table, sampled_stretch_profile


def main() -> None:
    r = 2
    # DCell_1(7): level-0 cells are K_7 "racks"; the level-1 wiring adds
    # exactly one link between every pair of cells. The spec (not the
    # graph) is the portable artifact — its fingerprint pins the host.
    fabric_spec = HostSpec("dcell", params={"n": 7, "level": 1})
    session = Session()
    fabric = session.resolve_graph(SpannerSpec("greedy", graph=fabric_spec))
    print(
        f"fabric: DCell_1(7) [{fabric_spec.fingerprint()}] "
        f"n={fabric.num_vertices}, m={fabric.num_edges}"
    )

    # Adaptive mode: add oversampling iterations until a Monte Carlo
    # verifier accepts (exhaustive checking is exponential in r; at this
    # scale we verify statistically and report the measured profile).
    from repro.core import sampled_fault_check

    ft = fault_tolerant_spanner_until_valid(
        fabric,
        k=3,
        r=r,
        validity_check=lambda h: sampled_fault_check(
            h, fabric, 3, r, trials=150, seed=99
        ),
        batch=8,
        seed=8,
    )
    # The no-fault-tolerance strawman goes through the typed front door;
    # binding the same HostSpec hits the session's per-fingerprint host
    # cache, so both builds share one fabric instance and CSR snapshot.
    plain = session.build(
        SpannerSpec("greedy", stretch=3, graph=fabric_spec)
    ).spanner

    rows = []
    for name, overlay in [("ft-backbone", ft.spanner), ("plain greedy", plain)]:
        profile = sampled_stretch_profile(
            overlay, fabric, r, trials=60, seed=9
        )
        rows.append(
            [
                name,
                overlay.num_edges,
                f"{100.0 * overlay.num_edges / fabric.num_edges:.0f}%",
                profile.max if not math.isinf(profile.max) else math.inf,
                f"{100.0 * profile.fraction_within(3.0):.0f}%",
            ]
        )
    print_table(
        ["overlay", "edges", "of fabric", "worst stretch", "fault sets ok"],
        rows,
        title=f"route quality under {r} random machine failures (60 trials)",
    )
    print(
        "The fault-tolerant backbone keeps every failure scenario within the\n"
        "stretch budget; the plain spanner has no such guarantee and can even\n"
        "disconnect surviving machines (stretch = inf)."
    )


if __name__ == "__main__":
    main()
