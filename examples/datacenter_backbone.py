#!/usr/bin/env python
"""Scenario: a sparse fault-tolerant backbone for a datacenter-style fabric.

The motivating application of fault-tolerant spanners in the paper is
distributed systems: keep a *sparse* overlay such that even after some
machines fail, the overlay still approximates the surviving network's
distances. This example:

1. builds a two-tier "fabric" (racks as dense clusters, a random
   inter-rack mesh — a stand-in for a real topology trace);
2. extracts an r-fault-tolerant 3-spanner backbone with the Theorem 2.1
   conversion;
3. kills random machine sets and measures route-length inflation on the
   backbone versus the full fabric, and compares against a *non*-fault-
   tolerant greedy spanner, which degrades badly under the same faults.

Run:  python examples/datacenter_backbone.py
"""

from __future__ import annotations

import math
import random

from repro import (
    Session,
    SpannerSpec,
    fault_tolerant_spanner_until_valid,
)
from repro.analysis import print_table, sampled_stretch_profile
from repro.graph import Graph


def build_fabric(
    racks: int, per_rack: int, inter_rack_degree: int, seed: int
) -> Graph:
    """A two-tier fabric: cliques per rack plus a random inter-rack mesh."""
    rng = random.Random(seed)
    g = Graph()
    for rack in range(racks):
        hosts = [(rack, i) for i in range(per_rack)]
        g.add_vertices(hosts)
        for i, a in enumerate(hosts):
            for b in hosts[i + 1:]:
                g.add_edge(a, b, 1.0)  # intra-rack hop
    for rack in range(racks):
        for _ in range(inter_rack_degree):
            other = rng.randrange(racks)
            if other == rack:
                continue
            a = (rack, rng.randrange(per_rack))
            b = (other, rng.randrange(per_rack))
            if a != b and not g.has_edge(a, b):
                g.add_edge(a, b, 4.0)  # inter-rack link is slower
    return g


def main() -> None:
    r = 2
    fabric = build_fabric(racks=6, per_rack=10, inter_rack_degree=5, seed=7)
    print(f"fabric: n={fabric.num_vertices}, m={fabric.num_edges}")

    # Adaptive mode: add oversampling iterations until a Monte Carlo
    # verifier accepts (exhaustive checking is exponential in r; at this
    # scale we verify statistically and report the measured profile).
    from repro.core import sampled_fault_check

    ft = fault_tolerant_spanner_until_valid(
        fabric,
        k=3,
        r=r,
        validity_check=lambda h: sampled_fault_check(
            h, fabric, 3, r, trials=150, seed=99
        ),
        batch=8,
        seed=8,
    )
    # The no-fault-tolerance strawman goes through the typed front door
    # (same fabric, so it reuses the CSR snapshot the adaptive loop built).
    plain = Session().build(
        SpannerSpec("greedy", stretch=3), graph=fabric
    ).spanner

    rows = []
    for name, overlay in [("ft-backbone", ft.spanner), ("plain greedy", plain)]:
        profile = sampled_stretch_profile(
            overlay, fabric, r, trials=60, seed=9
        )
        rows.append(
            [
                name,
                overlay.num_edges,
                f"{100.0 * overlay.num_edges / fabric.num_edges:.0f}%",
                profile.max if not math.isinf(profile.max) else math.inf,
                f"{100.0 * profile.fraction_within(3.0):.0f}%",
            ]
        )
    print_table(
        ["overlay", "edges", "of fabric", "worst stretch", "fault sets ok"],
        rows,
        title=f"route quality under {r} random machine failures (60 trials)",
    )
    print(
        "The fault-tolerant backbone keeps every failure scenario within the\n"
        "stretch budget; the plain spanner has no such guarantee and can even\n"
        "disconnect surviving machines (stretch = inf)."
    )


if __name__ == "__main__":
    main()
