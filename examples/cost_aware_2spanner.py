#!/usr/bin/env python
"""Scenario: minimum-cost fault-tolerant 2-spanner of a directed service mesh.

Section 3 of the paper: directed graph, per-edge *costs* (e.g. link rental
prices), unit lengths, and a hard latency budget of two hops even after up
to r node failures. We compare three algorithms on the same instance:

* the paper's Theorem 3.3 O(log n)-approximation (knapsack-cover LP +
  threshold rounding),
* the [DK10] baseline (same rounding, α inflated by r),
* the exact branch-and-bound optimum (tiny instances only).

Run:  python examples/cost_aware_2spanner.py
"""

from __future__ import annotations

from repro import FaultModel, Session, SpannerSpec, approximate_ft2_spanner
from repro.analysis import print_table
from repro.graph import gnp_random_digraph, knapsack_gap_gadget
from repro.two_spanner import exact_minimum_ft2_spanner, solve_ft2_lp


def demo_random_mesh() -> None:
    r = 2
    mesh = gnp_random_digraph(14, 0.45, seed=3, cost_range=(1.0, 10.0))
    print(f"service mesh: n={mesh.num_vertices}, arcs={mesh.num_edges}")

    lp = solve_ft2_lp(mesh, r)
    # Both competing pipelines as one spec batch through one Session —
    # same host binding, same seed, differing only in the algorithm name.
    session = Session()
    faults = FaultModel.vertex(r)
    new, old = session.build_many(
        [
            SpannerSpec("ft2-approx", stretch=2, faults=faults, seed=4),
            SpannerSpec("dk10-baseline", stretch=2, faults=faults, seed=4),
        ],
        graph=mesh,
    )

    rows = [["LP (4) lower bound", lp.objective, 1.0, "-", "-"]]
    for label, report in [
        ("Theorem 3.3 (alpha = C log n)", new),
        ("DK10 baseline (alpha = C r log n)", old),
    ]:
        rows.append(
            [
                label,
                report.stats["cost"],
                report.stats["ratio_vs_lp"],
                report.stats["alpha"],
                session.verify(report, graph=mesh, mode="lemma31"),
            ]
        )
    print_table(
        ["algorithm", "cost", "cost / LP*", "alpha", "valid"],
        rows,
        title=f"minimum-cost r={r} fault-tolerant 2-spanner",
    )


def demo_gadget() -> None:
    """The knapsack-cover gadget: where the old relaxation goes wrong."""
    r = 3
    gadget = knapsack_gap_gadget(r, expensive_cost=60.0)
    exact = exact_minimum_ft2_spanner(gadget, r)
    approx = approximate_ft2_spanner(gadget, r, seed=5)
    lp_with = solve_ft2_lp(gadget, r)
    lp_without = solve_ft2_lp(gadget, r, with_knapsack_cover=False)
    print_table(
        ["quantity", "value"],
        [
            ["exact optimum (branch & bound)", exact.cost],
            ["Theorem 3.3 rounded cost", approx.cost],
            ["LP (4) with knapsack-cover", lp_with.objective],
            ["LP (3) without knapsack-cover", lp_without.objective],
            ["gap closed by KC cuts", lp_with.objective / lp_without.objective],
        ],
        title=f"M-gadget, r={r}: knapsack-cover inequalities at work",
    )


if __name__ == "__main__":
    demo_random_mesh()
    demo_gadget()
