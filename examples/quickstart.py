#!/usr/bin/env python
"""Quickstart: build and verify a fault-tolerant spanner.

Builds an r-fault-tolerant 3-spanner of a dense random graph with the
paper's Theorem 2.1 conversion, verifies it exhaustively against every
fault set of size <= r, and prints the headline numbers.

The build goes through the typed front door: a
:class:`repro.spec.SpannerSpec` says *what* to build (algorithm, stretch
budget, fault model, seed) and a :class:`repro.session.Session` executes
it. Two modes of the conversion are shown:

* the *theorem schedule* (``α = C r³ ln n`` iterations) — what the proof
  uses; at laptop scale its union saturates toward the host graph, which
  is exactly what the asymptotic bound permits at small n;
* the *adaptive* mode — iterate until an exhaustive verifier accepts,
  which reveals how few iterations suffice in practice
  (:func:`repro.core.fault_tolerant_spanner_until_valid`, the one loop
  that needs a live validity callback and therefore stays a function).

Run:  python examples/quickstart.py
"""

from repro import (
    FaultModel,
    Session,
    SpannerSpec,
    fault_tolerant_spanner_until_valid,
    is_fault_tolerant_spanner,
)
from repro.analysis import exhaustive_stretch_profile, print_table
from repro.graph import connected_gnp_graph


def main() -> None:
    k, r = 3, 2
    graph = connected_gnp_graph(26, 0.55, seed=0)
    print(f"host graph: n={graph.num_vertices}, m={graph.num_edges}")

    session = Session()
    spec = SpannerSpec(
        "theorem21", stretch=k, faults=FaultModel.vertex(r), seed=1
    )
    theorem = session.build(spec, graph=graph)

    adaptive = fault_tolerant_spanner_until_valid(
        graph,
        k,
        r,
        validity_check=lambda h: is_fault_tolerant_spanner(h, graph, k, r),
        batch=8,
        seed=1,
    )

    profile = exhaustive_stretch_profile(adaptive.spanner, graph, r)
    print_table(
        ["quantity", "adaptive", "theorem schedule"],
        [
            ["iterations", adaptive.stats.iterations,
             theorem.stats["iterations"]],
            ["spanner edges", adaptive.num_edges, theorem.size],
            [
                "edges kept (%)",
                100.0 * adaptive.num_edges / graph.num_edges,
                100.0 * theorem.size / graph.num_edges,
            ],
            [
                "exhaustively valid",
                True,  # by construction of the adaptive loop
                session.verify(theorem, graph=graph, mode="exhaustive"),
            ],
        ],
        title=f"r={r} fault-tolerant {k}-spanner (Theorem 2.1 conversion)",
    )
    print(
        f"worst stretch of the adaptive spanner over all "
        f"{len(profile.samples)} fault sets: {profile.max:.2f} (budget {k})"
    )
    print(
        "replay this exact build anywhere:  spec.save('spec.json');  "
        "python -m repro run spec.json"
    )


if __name__ == "__main__":
    main()
