#!/usr/bin/env python
"""Scenario: building the spanner *inside* the network (LOCAL model).

Sections 2.3 and 3.5: every algorithm in the paper can run distributedly,
with each node talking only to its neighbours. This example runs, in the
library's synchronous LOCAL-model simulator:

1. the distributed Baswana–Sen 3-spanner (the O(k)-round base
   construction);
2. the Theorem 2.3 distributed fault-tolerance conversion on top of it;
3. a Lemma 3.7 padded decomposition via TTL flooding;
4. Algorithm 2 (Theorem 3.9): the cluster-decomposed LP with local
   rounding for the directed 2-spanner problem,

reporting the round counts the paper's statements bound.

Run:  python examples/distributed_overlay.py
"""

from __future__ import annotations

import math

from repro import FaultModel, Session, SpannerSpec
from repro.analysis import print_table
from repro.distributed import (
    distributed_baswana_sen,
    distributed_padded_decomposition,
)
from repro.graph import connected_gnp_graph, gnp_random_digraph, grid_graph
from repro.spanners import is_spanner


def main() -> None:
    comm = connected_gnp_graph(36, 0.2, seed=1)
    n = comm.num_vertices
    rows = []

    spanner, sim = distributed_baswana_sen(comm, k=2, seed=2)
    rows.append(
        [
            "Baswana-Sen 3-spanner",
            sim.rounds,
            f"{spanner.num_edges}/{comm.num_edges} edges",
            is_spanner(spanner, comm, 3),
        ]
    )

    # The fault-tolerant pipelines run through the typed front door: the
    # registry's "distributed-ft" / "distributed-ft2" entries drive the
    # same LOCAL simulator, with round counts in the report stats.
    session = Session()
    ft = session.build(
        SpannerSpec(
            "distributed-ft", stretch=3, faults=FaultModel.vertex(1), seed=3
        ),
        graph=comm,
    )
    rows.append(
        [
            "Theorem 2.3 conversion (r=1)",
            ft.stats["total_rounds"],
            f"{ft.size} edges, {ft.stats['iterations']} iterations",
            session.verify(report=ft, graph=comm, mode="sampled",
                           trials=40, seed=4),
        ]
    )

    # Padding is a probabilistic guarantee (>= 1/2 per vertex over the
    # random decomposition), so measure it as an average over samples.
    grid = grid_graph(8, 8)
    rounds = 0
    padded_sum = 0.0
    diam = 0
    samples = 8
    for i in range(samples):
        dec, sim_dec = distributed_padded_decomposition(grid, seed=50 + i)
        rounds = sim_dec.rounds
        padded_sum += dec.padded_fraction(grid)
        diam = max(diam, dec.max_weak_diameter(grid))
    mean_padded = padded_sum / samples
    rows.append(
        [
            "padded decomposition (8x8 grid)",
            rounds,
            f"weak diam <= {diam}, padded {100 * mean_padded:.0f}% "
            f"(avg of {samples})",
            mean_padded >= 0.5,
        ]
    )

    mesh = gnp_random_digraph(12, 0.5, seed=6)
    alg2 = session.build(
        SpannerSpec(
            "distributed-ft2", stretch=2, faults=FaultModel.vertex(1), seed=7
        ),
        graph=mesh,
    )
    rows.append(
        [
            "Algorithm 2 (Theorem 3.9, r=1)",
            alg2.stats["total_rounds"],
            f"cost {alg2.stats['cost']:.0f}, "
            f"LP cost {alg2.stats['lp_cost']:.1f}",
            session.verify(report=alg2, graph=mesh, mode="lemma31"),
        ]
    )

    print_table(
        ["distributed algorithm", "rounds", "output", "verified"],
        rows,
        title=f"LOCAL-model runs (communication graph n={n}; "
        f"log2 n = {math.log2(n):.1f})",
    )


if __name__ == "__main__":
    main()
